// Client-side reliability layer for the ULC wire protocol: sequence-numbered
// idempotent messages, per-message timeouts with bounded exponential-backoff
// retries, and a per-level retry-budget circuit breaker that switches the
// client into *degraded mode* (bypass the dead level, probe periodically for
// recovery). docs/PROTOCOL.md §"Failure semantics & recovery" documents the
// state machine and the constants.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace ulc {

using SimTime = double;  // mirrors proto/event_queue.h (kept header-light)

// Retry/backoff/probing constants. The initial timeout is a multiple of the
// zero-load round-trip time to the target (per-target, so a deep level gets
// a proportionally longer budget), doubled per attempt, capped, and jittered
// to avoid synchronized retry bursts.
struct RetryPolicy {
  double rtt_multiplier = 4.0;   // initial timeout = multiplier * zero-load RTT
  double backoff = 2.0;          // timeout multiplier per retry
  double jitter = 0.25;          // timeout *= 1 + jitter * U[0,1)
  std::size_t max_attempts = 4;  // total tries before the budget is exhausted
  SimTime max_timeout_ms = 1000.0;
  SimTime probe_interval_ms = 50.0;  // degraded-mode recovery probe period
};

// Timeout for `attempt` (0-based) of a message whose zero-load round trip is
// `base_rtt_ms`, with `jitter01` drawn from the run's seeded PRNG.
SimTime retry_timeout(const RetryPolicy& policy, SimTime base_rtt_ms,
                      std::size_t attempt, double jitter01);

// Receiver-side duplicate suppression: each message carries a monotonically
// increasing sequence number; a receiver accepts each number once. Memory
// stays bounded by the reorder window (numbers ahead of the contiguous
// frontier are remembered only until the frontier passes them).
class SequenceWindow {
 public:
  // True when `seq` is fresh (first delivery); false for a duplicate.
  bool accept(std::uint64_t seq);
  std::uint64_t duplicates_ignored() const { return duplicates_; }

 private:
  std::uint64_t next_ = 0;  // every seq < next_ has been accepted
  std::unordered_set<std::uint64_t> ahead_;
  std::uint64_t duplicates_ = 0;
};

// Per-level circuit breaker. Trips when a message to the level exhausts its
// retry budget; while open, the client bypasses the level (degraded mode)
// and sends a recovery probe every probe_interval_ms. A successful probe
// closes the breaker.
class LevelBreaker {
 public:
  bool open() const { return open_; }
  bool ever_tripped() const { return ever_tripped_; }

  void trip(SimTime now) {
    open_ = true;
    ever_tripped_ = true;
    next_probe_ = now;  // first probe may go immediately
  }
  void close() { open_ = false; }

  bool probe_due(SimTime now) const { return open_ && now >= next_probe_; }
  void probe_sent(SimTime now, SimTime interval) { next_probe_ = now + interval; }

 private:
  bool open_ = false;
  bool ever_tripped_ = false;
  SimTime next_probe_ = 0.0;
};

// Whole-run reliability accounting (not reset at warmup: fault handling is a
// property of the full run, unlike the steady-state performance counters).
struct ReliabilityStats {
  // Wire-level fates applied by the FaultPlan.
  std::uint64_t messages_lost = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_delayed = 0;
  // Client-side recovery machinery.
  std::uint64_t timeouts = 0;       // attempts that missed their deadline
  std::uint64_t retries = 0;        // re-sends after a timeout
  std::uint64_t late_replies = 0;   // replies that arrived past the deadline
  std::uint64_t duplicates_ignored = 0;  // suppressed by SequenceWindows
  std::uint64_t nacks = 0;          // level answered "I don't have it"
  std::uint64_t breaker_trips = 0;  // retry budget exhausted -> degraded mode
  std::uint64_t probes = 0;         // degraded-mode recovery probes sent
  std::uint64_t recoveries = 0;     // breakers closed by a successful probe
  // Directory repair.
  std::uint64_t resync_drops = 0;          // single stale entries dropped
  std::uint64_t resync_level_purges = 0;   // whole-level purges after a crash
  std::uint64_t resync_purged_entries = 0; // entries dropped by those purges
  std::uint64_t stale_copies_reclaimed = 0;  // level copies the directory no
                                             // longer tracked, reclaimed by
                                             // the resync inventory exchange
  // Data-path consequences.
  std::uint64_t bypassed_reads = 0;  // reads routed around an open breaker
  std::uint64_t stale_reads = 0;     // directory claimed a copy that was gone
  std::uint64_t failed_reads = 0;    // even the disk path exhausted its budget
  std::uint64_t demote_drops = 0;    // demotions whose data never arrived
  std::uint64_t dead_placements = 0;  // placements directed at a down level
  std::uint64_t cross_epoch_drops = 0;  // demote data refused by a receiver
                                        // that restarted since the sender
                                        // last synced its epoch
  std::uint64_t post_recovery_stale_reads = 0;  // stale reads served after
                                                // every breaker had closed
                                                // (recovery left stale state)
};

}  // namespace ulc
