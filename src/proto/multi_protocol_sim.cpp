#include "proto/multi_protocol_sim.h"

#include <algorithm>

#include "proto/event_queue.h"
#include "util/ensure.h"
#include "util/prng.h"

namespace ulc {

namespace {

// Per-access outcome recovered by diffing the scheme's cumulative counters
// around one access() call — keeps a single implementation of each scheme's
// (subtle) decision logic.
struct AccessDelta {
  std::size_t hit_level = kLevelOutSentinel;
  std::uint64_t demotions = 0;

  static constexpr std::size_t kLevelOutSentinel = static_cast<std::size_t>(-1);
};

class DeltaTracker {
 public:
  explicit DeltaTracker(const HierarchyStats& stats) : stats_(stats) { snap(); }

  void snap() {
    hits0_ = stats_.level_hits[0];
    hits1_ = stats_.level_hits[1];
    misses_ = stats_.misses;
    demotions_ = stats_.demotions[0];
  }

  AccessDelta delta() const {
    AccessDelta d;
    if (stats_.level_hits[0] != hits0_) {
      d.hit_level = 0;
    } else if (stats_.level_hits[1] != hits1_) {
      d.hit_level = 1;
    } else {
      ULC_ENSURE(stats_.misses != misses_, "access produced no hit and no miss");
      d.hit_level = AccessDelta::kLevelOutSentinel;
    }
    d.demotions = stats_.demotions[0] - demotions_;
    return d;
  }

 private:
  const HierarchyStats& stats_;
  std::uint64_t hits0_ = 0, hits1_ = 0, misses_ = 0, demotions_ = 0;
};

}  // namespace

MultiProtocolResult run_multi_protocol_sim(MultiLevelScheme& scheme,
                                           std::vector<PatternPtr> sources,
                                           const MultiProtocolConfig& config) {
  const std::size_t n_clients = sources.size();
  ULC_REQUIRE(n_clients >= 1, "need at least one client");
  ULC_REQUIRE(scheme.stats().level_hits.size() == 2,
              "multi protocol sim expects a two-level scheme");
  ULC_REQUIRE(config.refs_per_client > 0, "need references to simulate");

  obs::TraceRecorder* events = obs::gate(config.events);
  if (events) {
    for (std::size_t c = 0; c < n_clients; ++c)
      events->name_track(static_cast<int>(c), "client " + std::to_string(c));
  }

  EventQueue q;
  // Each reference schedules a handful of events (completion + think-time
  // re-issue); anything past this bound means a feedback loop is
  // rescheduling itself and the run would spin forever.
  q.set_event_limit(config.refs_per_client * n_clients * 64 + 1024);
  SimLink lan(config.shared_lan);
  SimTime disk_busy_until = 0.0;
  SimTime disk_busy_total = 0.0;

  MultiProtocolResult result;
  result.scheme = scheme.name();
  result.stats.resize(2);

  DeltaTracker tracker(scheme.stats());
  std::vector<Rng> rngs;
  std::vector<std::uint64_t> issued(n_clients, 0);
  for (std::size_t c = 0; c < n_clients; ++c)
    rngs.emplace_back(config.seed * 1000003 + c);
  const std::uint64_t warmup = static_cast<std::uint64_t>(
      config.warmup_fraction * static_cast<double>(config.refs_per_client));

  // Forward declaration dance: issue() schedules completion events which
  // call issue() again.
  std::function<void(ClientId)> issue = [&](ClientId c) {
    if (issued[c] >= config.refs_per_client) return;
    ++issued[c];
    const bool measured = issued[c] > warmup;
    const BlockId block = sources[c]->next(rngs[c]);

    tracker.snap();
    scheme.access(Request{block, c});
    const AccessDelta d = tracker.delta();

    const SimTime t_issue = q.now();
    if (measured) {
      ++result.stats.references;
      if (d.hit_level == 0) {
        ++result.stats.level_hits[0];
      } else if (d.hit_level == 1) {
        ++result.stats.level_hits[1];
      } else {
        ++result.stats.misses;
      }
      result.stats.demotions[0] += d.demotions;
    }

    if (d.hit_level == 0 && d.demotions == 0) {
      if (measured) {
        result.response_ms.add(0.0);
        result.response_hist.record(0.0);
        if (events)
          events->span("hit L0", "access", t_issue, 0.0, static_cast<int>(c),
                       issued[c] - 1, static_cast<std::int64_t>(block));
      }
      q.schedule_in(config.think_time_ms, [&issue, c] { issue(c); });
      return;
    }

    // Ship demotion transfers first (they were triggered by cache state
    // changes that logically precede the fetch completing; on the wire they
    // are simply queued traffic).
    for (std::uint64_t i = 0; i < d.demotions; ++i)
      lan.deliver_at(0, kBlockBytes, t_issue);

    if (d.hit_level == 0) {
      if (measured) {
        result.response_ms.add(0.0);
        result.response_hist.record(0.0);
        if (events)
          events->span("hit L0", "access", t_issue, 0.0, static_cast<int>(c),
                       issued[c] - 1, static_cast<std::int64_t>(block));
      }
      q.schedule_in(config.think_time_ms, [&issue, c] { issue(c); });
      return;
    }

    // Request travels the shared segment to the server.
    const SimTime t_at_server = lan.deliver_at(0, kControlBytes, t_issue);
    const bool server_hit = d.hit_level == 1;

    const std::uint64_t access_index = issued[c] - 1;
    auto finish = [&, c, t_issue, measured, server_hit, block,
                   access_index](SimTime ready) {
      // Block travels back up the shared segment; scheduled at `ready` so
      // the uplink sees sends in time order.
      q.schedule(ready, [&, c, t_issue, measured, server_hit, block,
                         access_index] {
        const SimTime done = lan.deliver_at(1, kBlockBytes, q.now());
        q.schedule(done, [&, c, t_issue, measured, server_hit, block,
                          access_index] {
          if (measured) {
            result.response_ms.add(q.now() - t_issue);
            result.response_hist.record(q.now() - t_issue);
            if (events)
              events->span(server_hit ? "hit L1" : "miss", "access", t_issue,
                           q.now() - t_issue, static_cast<int>(c), access_index,
                           static_cast<std::int64_t>(block));
          }
          q.schedule_in(config.think_time_ms, [&issue, c] { issue(c); });
        });
      });
    };

    if (server_hit) {
      finish(t_at_server);
    } else {
      q.schedule(t_at_server, [&, finish] {
        const SimTime start = std::max(q.now(), disk_busy_until);
        disk_busy_until = start + config.disk_service_ms;
        disk_busy_total += config.disk_service_ms;
        finish(disk_busy_until);
      });
    }
  };

  for (std::size_t c = 0; c < n_clients; ++c)
    q.schedule(0.0, [&issue, c] { issue(static_cast<ClientId>(c)); });
  q.run();

  result.elapsed_ms = std::max(q.now(), 1e-9);
  result.lan_down_utilization = lan.busy_ms(0) / result.elapsed_ms;
  result.lan_up_utilization = lan.busy_ms(1) / result.elapsed_ms;
  result.disk_utilization = disk_busy_total / result.elapsed_ms;
  result.throughput_per_s =
      static_cast<double>(n_clients * config.refs_per_client) /
      (result.elapsed_ms / 1000.0);

  CostModel model;
  model.link_ms = {config.shared_lan.latency_ms + lan.transmission_ms(kBlockBytes),
                   config.disk_service_ms};
  result.analytic_t_ave_ms = compute_access_time(result.stats, model).total();
  return result;
}

}  // namespace ulc
