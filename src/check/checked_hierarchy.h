// Shadow-model protocol auditor.
//
// CheckedHierarchy wraps any MultiLevelScheme and cross-checks, on every
// access, the scheme's narrated block movements (hierarchy/audit.h) against
// an independently maintained residency model, and the scheme's statistics
// deltas against the events that are supposed to explain them. Periodically
// it sweeps the full shadow state against the scheme's own residency answers
// so silent drift is caught even when every individual narration looked
// locally plausible. The wrapper is transparent: statistics, names and hit
// ratios are exactly the inner scheme's, so any harness can run checked.
//
// The invariants enforced (docs/checking.md has the catalog with paper
// references):
//   exclusivity / per-level duplication, byte-budget capacity accounting
//   (occupancy in SizeUnits, enforced once each access's narration has
//   replayed), serve-matches-request sequencing,
//   bottom-evict-only discipline, ghost movements (acting on absent copies),
//   statistics conservation (hits + misses == references; demotion, reload
//   and write-back counters == narrated transfer counts), residency drift,
//   and the uniLRUstack yardstick laws for ULC schemes.
//
// Violations throw AuditViolation (tests) or abort with the full replay
// context (seed/preset string, reference index, block, client) when
// CheckOptions::abort_on_violation is set — the ULC_ENSURE style, for use
// under a debugger or in CI smoke runs.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "hierarchy/hierarchy.h"

namespace ulc {

enum class ViolationKind : std::uint8_t {
  kExclusivity,   // a second copy appeared under a single-copy regime
  kDuplicate,     // a second copy appeared at one (level, owner) slot
  kCapacity,      // a level's occupancy exceeded its capacity mid-narration
  kSequencing,    // event ordering/shape broke protocol discipline
  kGhost,         // an event moved a copy the shadow model does not hold
  kConservation,  // statistics deltas disagree with the narrated events
  kDrift,         // scheme residency answers disagree with the shadow model
  kYardstick,     // a uniLRUstack yardstick law failed
  kStructure,     // scheme-internal consistency check failed
  kDurability,    // a dirty block was dropped or acked without a write-back
};

const char* violation_kind_name(ViolationKind kind);

class AuditViolation : public std::runtime_error {
 public:
  AuditViolation(ViolationKind violation, std::string message, std::uint64_t ref,
                 BlockId which)
      : std::runtime_error(std::move(message)),
        kind(violation),
        ref_index(ref),
        block(which) {}

  ViolationKind kind;
  std::uint64_t ref_index;  // 0-based reference index for replay
  BlockId block;
};

struct CheckOptions {
  // Abort (ULC_ENSURE style) instead of throwing AuditViolation.
  bool abort_on_violation = false;
  // Run the full drift sweep every N accesses; 0 disables periodic sweeps
  // (final_check() still runs one).
  std::size_t sweep_interval = 256;
  // Free-form replay context echoed in every report (trace name, seed, ...).
  std::string context;
};

class CheckedHierarchy final : public MultiLevelScheme {
 public:
  explicit CheckedHierarchy(SchemePtr inner, CheckOptions options = {});
  ~CheckedHierarchy() override;

  void access(const Request& request) override;
  const HierarchyStats& stats() const override { return inner_->stats(); }
  void reset_stats() override;
  const char* name() const override { return inner_->name(); }

  // The journal hooks into the inner scheme as usual, but the auditor keeps
  // a pointer so it can hold the journal to its ordering laws (D3) at every
  // access boundary and in final_check().
  void set_writeback_journal(WritebackSink* journal) override {
    journal_ = journal;
    inner_->set_writeback_journal(journal);
  }

  // The audit interface forwards to the inner scheme, except the sink: the
  // auditor owns the inner scheme's narration.
  AuditTraits audit_traits() const override { return inner_->audit_traits(); }
  void set_audit_sink(std::vector<AuditEvent>*) override;
  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    inner_->audit_resident_levels(client, block, out);
  }
  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return inner_->audit_level_size(client, level);
  }
  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return inner_->audit_level_bytes(client, level);
  }
  bool audit_check_internal() const override {
    return inner_->audit_check_internal();
  }
  std::size_t audit_stack_count() const override {
    return inner_->audit_stack_count();
  }
  const UniLruStack* audit_stack(std::size_t index) const override {
    return inner_->audit_stack(index);
  }

  // Directory resync passes through the auditor so the shadow model tracks
  // the repair: every narrated kLost drops the matching shadow copy, and
  // anything else narrated during a resync is a sequencing violation.
  bool supports_resync() const override { return inner_->supports_resync(); }
  bool resync_drop(ClientId client, BlockId block, std::size_t level) override;
  std::size_t resync_level(ClientId client, std::size_t level) override;

  const MultiLevelScheme& inner() const { return *inner_; }
  std::uint64_t accesses_checked() const { return accesses_; }
  bool event_checks_active() const { return traits_.supported; }

  // The events narrated by the most recent access() (valid until the next
  // access or resync call). Lets a harness that may not install its own
  // sink — the auditor owns the inner scheme's — still read the narration.
  const std::vector<AuditEvent>& last_events() const { return events_; }

  // Full drift sweep + structural checks; called automatically every
  // sweep_interval accesses. Harnesses call it once after a run.
  void final_check();

 private:
  struct Copy {
    ClientId owner = 0;  // meaningful for level 0 only
    std::size_t level = 0;
    SizeUnits size = 1;  // recorded at placement; sizes are id-stable
  };

  [[noreturn]] void fail(ViolationKind kind, const std::string& detail) const;

  std::size_t levels() const { return traits_.capacities.size(); }
  std::size_t& slot_size(std::size_t level, ClientId owner);
  std::size_t slot_size(std::size_t level, ClientId owner) const;
  std::uint64_t& slot_bytes(std::size_t level, ClientId owner);
  std::uint64_t slot_bytes(std::size_t level, ClientId owner) const;
  std::size_t find_copy(BlockId block, std::size_t level, ClientId owner) const;
  void add_copy(BlockId block, std::size_t level, ClientId owner, SizeUnits size);
  // Removes the copy and returns its recorded size (for moves down).
  SizeUnits remove_copy(BlockId block, std::size_t level, ClientId owner,
                        const char* what);
  // The byte-capacity law, checked once the access's narration has fully
  // replayed: occupancy may transiently overshoot a budget mid-access (a
  // sized demote lands before the evictions that make room — unavoidable at
  // block granularity), but never across an access boundary.
  void check_byte_budgets();
  // Shadow levels of `block` visible to `client` (its own level 0 + shared).
  std::vector<std::size_t> visible_levels(BlockId block, ClientId client) const;

  void check_event_shape(const AuditEvent& e) const;
  void replay_events();
  void replay_resync_events();
  void check_stats_delta(const std::vector<std::size_t>& pre_visible);
  void sweep();
  void check_stack(const UniLruStack& stack, std::size_t index) const;

  SchemePtr inner_;
  CheckOptions options_;
  AuditTraits traits_;

  std::vector<AuditEvent> events_;
  HierarchyStats before_;  // stats snapshot taken at the top of access()
  Request current_{};

  // Shadow residency: every copy of every block, plus per-slot occupancy in
  // copies and in SizeUnits (level 0 is per owner; shared levels have a
  // single slot each).
  std::unordered_map<BlockId, std::vector<Copy>> copies_;
  std::vector<std::vector<std::size_t>> sizes_;
  std::vector<std::vector<std::uint64_t>> bytes_;

  // Durability shadow state: which blocks hold dirty data the hierarchy has
  // not yet written back (D1/D2), and which dirty blocks fully left the
  // hierarchy this access — legal only if a write-back for them was also
  // narrated before the access ended (D1, checked after replay).
  std::unordered_set<BlockId> dirty_shadow_;
  std::vector<BlockId> dirty_exits_;
  WritebackSink* journal_ = nullptr;

  // Per-access byte traffic reconstructed while replaying the narration
  // (moves weighted by the shadow's recorded sizes, charges by the narrated
  // size); check_stats_delta holds the scheme's byte counters to these.
  std::vector<std::uint64_t> replay_demote_bytes_;
  std::vector<std::uint64_t> replay_reload_bytes_;

  std::uint64_t accesses_ = 0;
};

// Convenience factory mirroring the scheme factories.
SchemePtr make_checked(SchemePtr inner, CheckOptions options = {});

}  // namespace ulc
