// Deliberately broken scheme wrappers — the auditor's own test fixtures.
//
// Each mutant forwards everything to a real inner scheme but tampers with
// one aspect of its observable behaviour (the event narration, the
// statistics, the residency answers, or an exposed uniLRUstack), modeling a
// specific class of implementation bug. tests/check_test.cpp asserts that
// CheckedHierarchy catches every mutant with the expected ViolationKind —
// the mutation tests that keep the auditor itself honest.
#pragma once

#include <vector>

#include "hierarchy/hierarchy.h"

namespace ulc {

enum class Mutation {
  kDoublePlace,        // duplicates a placement event      -> duplicate
  kSkipDemote,         // suppresses a demotion event       -> conservation
  kDropEvict,          // suppresses an eviction event      -> capacity
  kSizeLeak,           // the count-thinking bug in a byte-budget world: the
                       // eviction loop stops after one victim per access, so
                       // a sized admission leaks the rest  -> capacity
                       // (invisible at unit size, where one admission needs
                       // at most one victim)
  kGhostDemote,        // demotes a block that isn't there  -> ghost
  kServeWrongBlock,    // serves a block nobody asked for   -> sequencing
  kStatsDrop,          // under-reports misses              -> conservation
  kLyingResidency,     // hides deep copies from queries    -> drift
  kMisorderYardstick,  // corrupts a uniLRUstack yardstick  -> yardstick
  kResyncAmnesia,      // resync narrates the kLost but forgets to evict the
                       // stale directory entry              -> drift
  kDropDirty,          // evicts a dirty block but skips its write-back (the
                       // narration and the counter both)    -> durability
  kAckBeforeWrite,     // claims a write-back for a victim that was never
                       // dirty — acking unwritten data      -> durability
  kReplayReorder,      // completes an access's journal write-backs
                       // newest-first, acking out of append order
                       //                                    -> durability
};

// Wraps `inner` with the given defect. The wrapper keeps the inner scheme's
// name, traits and statistics shape, so it drops into any harness.
SchemePtr make_mutant(SchemePtr inner, Mutation mutation);

}  // namespace ulc
