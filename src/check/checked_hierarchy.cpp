#include "check/checked_hierarchy.h"

#include <algorithm>
#include <sstream>

#include "ulc/uni_lru_stack.h"
#include "util/ensure.h"

namespace ulc {

namespace {
constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

std::uint64_t sum(const std::vector<std::uint64_t>& v) {
  std::uint64_t total = 0;
  for (std::uint64_t x : v) total += x;
  return total;
}
}  // namespace

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kExclusivity:
      return "exclusivity";
    case ViolationKind::kDuplicate:
      return "duplicate";
    case ViolationKind::kCapacity:
      return "capacity";
    case ViolationKind::kSequencing:
      return "sequencing";
    case ViolationKind::kGhost:
      return "ghost";
    case ViolationKind::kConservation:
      return "conservation";
    case ViolationKind::kDrift:
      return "drift";
    case ViolationKind::kYardstick:
      return "yardstick";
    case ViolationKind::kStructure:
      return "structure";
    case ViolationKind::kDurability:
      return "durability";
  }
  return "?";
}

CheckedHierarchy::CheckedHierarchy(SchemePtr inner, CheckOptions options)
    : inner_(std::move(inner)), options_(std::move(options)) {
  ULC_REQUIRE(inner_ != nullptr, "CheckedHierarchy needs a scheme to wrap");
  traits_ = inner_->audit_traits();
  if (traits_.supported) {
    ULC_REQUIRE(!traits_.capacities.empty(),
                "auditable schemes must declare per-level capacities");
    ULC_REQUIRE(traits_.clients >= 1, "auditable schemes must declare clients");
    sizes_.resize(levels());
    bytes_.resize(levels());
    sizes_[0].assign(traits_.clients, 0);
    bytes_[0].assign(traits_.clients, 0);
    for (std::size_t l = 1; l < levels(); ++l) {
      sizes_[l].assign(1, 0);
      bytes_[l].assign(1, 0);
    }
    inner_->set_audit_sink(&events_);
  }
}

CheckedHierarchy::~CheckedHierarchy() {
  if (traits_.supported) inner_->set_audit_sink(nullptr);
}

void CheckedHierarchy::set_audit_sink(std::vector<AuditEvent>*) {
  ULC_REQUIRE(false, "CheckedHierarchy owns its inner scheme's audit sink");
}

void CheckedHierarchy::fail(ViolationKind kind, const std::string& detail) const {
  std::ostringstream os;
  os << "audit violation [" << violation_kind_name(kind) << "]: " << detail
     << " | scheme=" << inner_->name() << " ref=" << accesses_
     << " block=" << current_.block << " client=" << current_.client;
  if (!options_.context.empty()) os << " context=" << options_.context;
  if (options_.abort_on_violation)
    ensure_fail(violation_kind_name(kind), __FILE__, __LINE__, os.str().c_str());
  throw AuditViolation(kind, os.str(), accesses_, current_.block);
}

std::size_t& CheckedHierarchy::slot_size(std::size_t level, ClientId owner) {
  return level == 0 ? sizes_[0][owner] : sizes_[level][0];
}

std::size_t CheckedHierarchy::slot_size(std::size_t level, ClientId owner) const {
  return level == 0 ? sizes_[0][owner] : sizes_[level][0];
}

std::uint64_t& CheckedHierarchy::slot_bytes(std::size_t level, ClientId owner) {
  return level == 0 ? bytes_[0][owner] : bytes_[level][0];
}

std::uint64_t CheckedHierarchy::slot_bytes(std::size_t level, ClientId owner) const {
  return level == 0 ? bytes_[0][owner] : bytes_[level][0];
}

std::size_t CheckedHierarchy::find_copy(BlockId block, std::size_t level,
                                        ClientId owner) const {
  auto it = copies_.find(block);
  if (it == copies_.end()) return kNpos;
  const std::vector<Copy>& v = it->second;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].level != level) continue;
    if (level != 0 || v[i].owner == owner) return i;
  }
  return kNpos;
}

void CheckedHierarchy::add_copy(BlockId block, std::size_t level, ClientId owner,
                                SizeUnits size) {
  std::vector<Copy>& v = copies_[block];
  if (traits_.exclusive && !v.empty())
    fail(ViolationKind::kExclusivity,
         "a second copy appeared in an exclusive hierarchy");
  if (find_copy(block, level, owner) != kNpos)
    fail(ViolationKind::kDuplicate, "level already holds a copy of this block");
  v.push_back(Copy{owner, level, size});
  ++slot_size(level, owner);
  slot_bytes(level, owner) += size;
}

SizeUnits CheckedHierarchy::remove_copy(BlockId block, std::size_t level,
                                        ClientId owner, const char* what) {
  const std::size_t i = find_copy(block, level, owner);
  if (i == kNpos)
    fail(ViolationKind::kGhost,
         std::string(what) + " acts on a copy the shadow model does not hold");
  std::vector<Copy>& v = copies_[block];
  const SizeUnits size = v[i].size;
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
  if (v.empty()) copies_.erase(block);
  --slot_size(level, owner);
  slot_bytes(level, owner) -= size;
  return size;
}

void CheckedHierarchy::check_byte_budgets() {
  for (std::size_t l = 0; l < levels(); ++l) {
    const std::size_t cap = traits_.capacities[l];
    if (cap == 0) continue;  // elastic: the shared cache sizes itself
    for (std::size_t s = 0; s < bytes_[l].size(); ++s) {
      if (bytes_[l][s] > cap)
        fail(ViolationKind::kCapacity,
             "level occupancy exceeded its byte budget at access end (a "
             "missing eviction or demotion narration)");
    }
  }
}

std::vector<std::size_t> CheckedHierarchy::visible_levels(BlockId block,
                                                          ClientId client) const {
  std::vector<std::size_t> out;
  auto it = copies_.find(block);
  if (it == copies_.end()) return out;
  for (const Copy& c : it->second) {
    if (c.level == 0 && c.owner != client) continue;
    out.push_back(c.level);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void CheckedHierarchy::check_event_shape(const AuditEvent& e) const {
  const auto level_ok = [&](std::size_t l) { return l < levels(); };
  const bool from_ok = e.from == kAuditNoLevel || level_ok(e.from);
  const bool to_ok = e.to == kAuditNoLevel || level_ok(e.to);
  if (!from_ok || !to_ok || e.owner >= traits_.clients)
    fail(ViolationKind::kSequencing, "event endpoints out of range");
  switch (e.kind) {
    case AuditEvent::Kind::kServe:
    case AuditEvent::Kind::kEvict:
    case AuditEvent::Kind::kLost:
      if (e.from == kAuditNoLevel)
        fail(ViolationKind::kSequencing, "serve/evict without a source level");
      break;
    case AuditEvent::Kind::kPlace:
      if (e.to == kAuditNoLevel)
        fail(ViolationKind::kSequencing, "placement without a target level");
      break;
    case AuditEvent::Kind::kDemote:
    case AuditEvent::Kind::kDemoteMerge:
    case AuditEvent::Kind::kReload:
    case AuditEvent::Kind::kCharge:
      if (e.from == kAuditNoLevel || e.to == kAuditNoLevel || e.to <= e.from)
        fail(ViolationKind::kSequencing, "downward transfer must move down");
      break;
    case AuditEvent::Kind::kWriteback:
      if (e.from == kAuditNoLevel)
        fail(ViolationKind::kSequencing, "write-back without a source level");
      break;
  }
}

void CheckedHierarchy::replay_events() {
  replay_demote_bytes_.assign(levels(), 0);
  replay_reload_bytes_.assign(levels(), 0);
  bool flushed_current = false;
  const auto charge_links = [&](std::vector<std::uint64_t>& links,
                                const AuditEvent& e, std::uint64_t size) {
    for (std::size_t k = e.from; k < e.to && k < links.size(); ++k)
      links[k] += size;
  };
  for (const AuditEvent& e : events_) {
    check_event_shape(e);
    switch (e.kind) {
      case AuditEvent::Kind::kServe:
        if (e.block != current_.block)
          fail(ViolationKind::kSequencing,
               "serve of a block other than the requested one");
        remove_copy(e.block, e.from, e.owner, "serve");
        break;
      case AuditEvent::Kind::kPlace:
        add_copy(e.block, e.to, e.owner, e.size);
        break;
      case AuditEvent::Kind::kDemote:
      case AuditEvent::Kind::kReload: {
        const SizeUnits moved = remove_copy(e.block, e.from, e.owner, "demote");
        add_copy(e.block, e.to, e.owner, moved);
        charge_links(e.kind == AuditEvent::Kind::kDemote ? replay_demote_bytes_
                                                         : replay_reload_bytes_,
                     e, moved);
        break;
      }
      case AuditEvent::Kind::kDemoteMerge: {
        const SizeUnits moved =
            remove_copy(e.block, e.from, e.owner, "demote-merge");
        if (find_copy(e.block, e.to, e.owner) == kNpos)
          fail(ViolationKind::kGhost,
               "demote-merge into a level holding no shared copy");
        charge_links(replay_demote_bytes_, e, moved);
        break;
      }
      case AuditEvent::Kind::kEvict:
        if (traits_.bottom_evict_only && e.from + 1 != levels() &&
            !e.through_bottom)
          fail(ViolationKind::kSequencing,
               "eviction from an interior level of a demote-before-evict "
               "hierarchy");
        remove_copy(e.block, e.from, e.owner, "evict");
        // A dirty block whose last copy just left the hierarchy must have a
        // write-back narrated within the same access (D1); record it and
        // judge once the full narration has replayed.
        if (dirty_shadow_.count(e.block) != 0 &&
            copies_.find(e.block) == copies_.end())
          dirty_exits_.push_back(e.block);
        break;
      case AuditEvent::Kind::kLost:
        // A resync discovered the copy is gone. Not an eviction: exempt
        // from the bottom-evict-only rule (the copy was found missing, it
        // did not leave through the protocol). The dirty data is lost with
        // the copy — that is what the journal's loss record is for — so the
        // durability shadow forgets it rather than demanding a write-back.
        remove_copy(e.block, e.from, e.owner, "lost");
        dirty_shadow_.erase(e.block);
        break;
      case AuditEvent::Kind::kCharge:
        // A charged transfer moves no copy; its byte weight is narrated.
        charge_links(replay_demote_bytes_, e, e.size);
        break;
      case AuditEvent::Kind::kWriteback: {
        // D2: a write-back may only carry dirty data. The one legal
        // exception is the straight-through write of the current request
        // (an uncacheable block written directly to the storage level).
        const bool write_through =
            current_.op == Op::kWrite && e.block == current_.block;
        if (dirty_shadow_.count(e.block) == 0 && !write_through)
          fail(ViolationKind::kDurability,
               "write-back narrated for a block with no dirty data (ack "
               "before write)");
        if (e.block == current_.block) flushed_current = true;
        dirty_shadow_.erase(e.block);
        break;
      }
    }
  }
  check_byte_budgets();
  // D1: every dirty block that fully left the hierarchy this access must
  // have had its write-back narrated by now (the kWriteback replay above
  // cleared it from the durability shadow).
  for (BlockId b : dirty_exits_) {
    if (dirty_shadow_.count(b) != 0 && copies_.find(b) == copies_.end())
      fail(ViolationKind::kDurability,
           "a dirty block left the hierarchy without a write-back");
  }
  dirty_exits_.clear();
  // A write that leaves the block resident leaves dirty data behind — unless
  // the access already flushed it (a straight-through write whose stale copy
  // another client still holds is clean: the data reached disk).
  if (current_.op == Op::kWrite && !flushed_current &&
      copies_.find(current_.block) != copies_.end())
    dirty_shadow_.insert(current_.block);
}

void CheckedHierarchy::replay_resync_events() {
  for (const AuditEvent& e : events_) {
    check_event_shape(e);
    if (e.kind != AuditEvent::Kind::kLost)
      fail(ViolationKind::kSequencing,
           "directory resync may narrate only kLost events");
    remove_copy(e.block, e.from, e.owner, "lost");
    dirty_shadow_.erase(e.block);
  }
  events_.clear();
}

bool CheckedHierarchy::resync_drop(ClientId client, BlockId block,
                                   std::size_t level) {
  if (!traits_.supported) return inner_->resync_drop(client, block, level);
  events_.clear();
  const bool dropped = inner_->resync_drop(client, block, level);
  replay_resync_events();
  return dropped;
}

std::size_t CheckedHierarchy::resync_level(ClientId client, std::size_t level) {
  if (!traits_.supported) return inner_->resync_level(client, level);
  events_.clear();
  const std::size_t n = inner_->resync_level(client, level);
  replay_resync_events();
  return n;
}

void CheckedHierarchy::check_stats_delta(
    const std::vector<std::size_t>& pre_visible) {
  const HierarchyStats& after = inner_->stats();
  if (after.references != before_.references + 1)
    fail(ViolationKind::kConservation,
         "one access must account exactly one reference");
  if (after.level_hits.size() != before_.level_hits.size() ||
      after.level_hits.size() != levels())
    fail(ViolationKind::kConservation, "level_hits arity changed mid-run");

  // Exactly one of {hit at some level, miss} per access.
  std::size_t hit_level = kNpos;
  std::uint64_t served = after.misses - before_.misses;
  const bool missed = served == 1;
  for (std::size_t l = 0; l < levels(); ++l) {
    const std::uint64_t d = after.level_hits[l] - before_.level_hits[l];
    served += d;
    if (d == 1 && hit_level == kNpos) hit_level = l;
  }
  if (served != 1)
    fail(ViolationKind::kConservation,
         "one access must account exactly one hit or miss");

  // The claimed service point must agree with where the shadow model last
  // saw the block (schemes with stale shared metadata only guarantee
  // membership, not the topmost level).
  if (missed) {
    if (!pre_visible.empty())
      fail(ViolationKind::kDrift,
           "miss claimed for a block the shadow model holds at a visible "
           "level");
  } else {
    const bool member = std::find(pre_visible.begin(), pre_visible.end(),
                                  hit_level) != pre_visible.end();
    if (!member)
      fail(ViolationKind::kDrift,
           "hit claimed at a level the shadow model does not see the block "
           "at");
    if (traits_.exact_hit_level && pre_visible.front() != hit_level)
      fail(ViolationKind::kDrift,
           "hit claimed below the topmost visible copy");
  }

  // Every transfer counter must be explained by the narrated events.
  std::vector<std::uint64_t> demote_links(after.demotions.size(), 0);
  std::vector<std::uint64_t> reload_links(after.reloads.size(), 0);
  std::uint64_t writebacks = 0;
  for (const AuditEvent& e : events_) {
    switch (e.kind) {
      case AuditEvent::Kind::kDemote:
      case AuditEvent::Kind::kDemoteMerge:
      case AuditEvent::Kind::kCharge:
        for (std::size_t k = e.from; k < e.to && k < demote_links.size(); ++k)
          ++demote_links[k];
        break;
      case AuditEvent::Kind::kReload:
        for (std::size_t k = e.from; k < e.to && k < reload_links.size(); ++k)
          ++reload_links[k];
        break;
      case AuditEvent::Kind::kWriteback:
        ++writebacks;
        break;
      default:
        break;
    }
  }
  for (std::size_t k = 0; k < demote_links.size(); ++k) {
    if (after.demotions[k] - before_.demotions[k] != demote_links[k])
      fail(ViolationKind::kConservation,
           "demotion counter disagrees with the narrated transfers");
  }
  for (std::size_t k = 0; k < reload_links.size(); ++k) {
    if (after.reloads[k] - before_.reloads[k] != reload_links[k])
      fail(ViolationKind::kConservation,
           "reload counter disagrees with the narrated reloads");
  }
  if (after.writebacks - before_.writebacks != writebacks)
    fail(ViolationKind::kConservation,
         "writeback counter disagrees with the narrated write-backs");
  if (sum(after.level_hits) + after.misses != after.references)
    fail(ViolationKind::kConservation, "hits + misses must equal references");

  // Byte conservation: the byte twins must move by exactly the traffic the
  // narration carried — the served block's size for the hit/miss twin, the
  // replayed per-link byte flow for the transfer twins. At unit size this
  // degenerates to the count checks above; on mixed-size traces it catches
  // a scheme that counts a sized block at the wrong weight.
  if (missed) {
    if (after.miss_bytes - before_.miss_bytes != current_.size)
      fail(ViolationKind::kConservation,
           "miss byte counter disagrees with the requested block's size");
  } else if (after.level_hit_bytes[hit_level] -
                 before_.level_hit_bytes[hit_level] !=
             current_.size) {
    fail(ViolationKind::kConservation,
         "hit byte counter disagrees with the requested block's size");
  }
  for (std::size_t k = 0; k < replay_demote_bytes_.size() &&
                          k < after.demotion_bytes.size();
       ++k) {
    if (after.demotion_bytes[k] - before_.demotion_bytes[k] !=
        replay_demote_bytes_[k])
      fail(ViolationKind::kConservation,
           "demotion byte counter disagrees with the narrated byte flow");
  }
  for (std::size_t k = 0; k < replay_reload_bytes_.size() &&
                          k < after.reload_bytes.size();
       ++k) {
    if (after.reload_bytes[k] - before_.reload_bytes[k] !=
        replay_reload_bytes_[k])
      fail(ViolationKind::kConservation,
           "reload byte counter disagrees with the narrated byte flow");
  }
}

void CheckedHierarchy::sweep() {
  // Occupancy: shadow slot sizes and byte usage against the scheme's own
  // accounting.
  for (std::size_t l = 0; l < levels(); ++l) {
    if (l == 0) {
      for (ClientId c = 0; c < traits_.clients; ++c) {
        if (inner_->audit_level_size(c, 0) != sizes_[0][c])
          fail(ViolationKind::kDrift, "client cache occupancy drifted");
        if (inner_->audit_level_bytes(c, 0) != bytes_[0][c])
          fail(ViolationKind::kDrift, "client cache byte occupancy drifted");
      }
    } else if (inner_->audit_level_size(0, l) != sizes_[l][0]) {
      fail(ViolationKind::kDrift, "shared level occupancy drifted");
    } else if (inner_->audit_level_bytes(0, l) != bytes_[l][0]) {
      fail(ViolationKind::kDrift, "shared level byte occupancy drifted");
    }
  }
  check_byte_budgets();
  // Membership: every shadow copy must be visible to the scheme and vice
  // versa, per queried client. Together with the occupancy equality above,
  // membership each way implies the resident sets are identical.
  std::vector<std::size_t> reported;
  // Order-independent set comparison: ulc-lint: allow(unordered-iteration)
  for (const auto& [block, block_copies] : copies_) {  // ulc-lint: allow(unordered-iteration)
    std::vector<ClientId> queried{0};
    for (const Copy& c : block_copies) {
      if (c.level == 0 && c.owner != 0) queried.push_back(c.owner);
    }
    for (ClientId c : queried) {
      reported.clear();
      inner_->audit_resident_levels(c, block, reported);
      std::sort(reported.begin(), reported.end());
      if (reported != visible_levels(block, c))
        fail(ViolationKind::kDrift,
             "scheme residency answers disagree with the shadow model");
    }
  }
  if (!inner_->audit_check_internal())
    fail(ViolationKind::kStructure, "scheme-internal consistency check failed");
  for (std::size_t i = 0; i < inner_->audit_stack_count(); ++i) {
    const UniLruStack* stack = inner_->audit_stack(i);
    if (stack != nullptr) check_stack(*stack, i);
  }
}

// The yardstick laws in their transient-tolerant form (DESIGN.md I3/I4):
// Y_i is the *deepest* stack node with level status i, carries that level
// status, exists iff the level is populated, and the per-level population
// the stack accounts matches an independent walk. Note that strict seq
// ordering across yardsticks (seq Y_0 > seq Y_1 > ...) is NOT an invariant:
// LLD placement may legitimately cache the most recent block at a deep
// level (docs/checking.md works the example).
void CheckedHierarchy::check_stack(const UniLruStack& stack,
                                   std::size_t index) const {
  const std::size_t stack_levels = stack.levels();
  std::vector<const UniLruStack::Node*> deepest(stack_levels, nullptr);
  std::vector<std::size_t> counts(stack_levels, 0);
  std::uint64_t last_seq = 0;
  bool first = true;
  for (const UniLruStack::Node* n = stack.tail(); n != nullptr; n = stack.prev(n)) {
    if (!first && n->seq <= last_seq)
      fail(ViolationKind::kStructure,
           "uniLRUstack order is not strictly recency-sorted");
    last_seq = n->seq;
    first = false;
    if (n->level == kLevelOut) continue;
    if (n->level >= stack_levels)
      fail(ViolationKind::kStructure, "stack node carries an invalid level");
    ++counts[n->level];
    if (deepest[n->level] == nullptr) deepest[n->level] = n;
  }
  for (std::size_t l = 0; l < stack_levels; ++l) {
    const UniLruStack::Node* yard = stack.yard(l);
    const std::string where =
        "stack " + std::to_string(index) + " level " + std::to_string(l);
    if (counts[l] == 0) {
      if (yard != nullptr)
        fail(ViolationKind::kYardstick, where + ": yardstick for an empty level");
      continue;
    }
    if (yard == nullptr)
      fail(ViolationKind::kYardstick, where + ": populated level lost its yardstick");
    if (yard != deepest[l])
      fail(ViolationKind::kYardstick,
           where + ": yardstick is not the deepest block of its level");
    if (stack.level_size(l) != counts[l])
      fail(ViolationKind::kYardstick,
           where + ": level population disagrees with the stack walk");
  }
}

void CheckedHierarchy::access(const Request& request) {
  current_ = request;
  before_ = inner_->stats();
  std::vector<std::size_t> pre_visible;
  if (traits_.supported) {
    pre_visible = visible_levels(request.block, request.client);
    events_.clear();
  }
  inner_->access(request);
  if (traits_.supported) {
    replay_events();
    check_stats_delta(pre_visible);
    // D3: the journal's own ordering laws — no ack before the write landed,
    // acks in append order, no acknowledged entry ever lost — must hold at
    // every access boundary.
    if (journal_ != nullptr) {
      std::string why;
      if (!journal_->laws_hold(why))
        fail(ViolationKind::kDurability,
             "write-back journal law violated: " + why);
    }
  } else {
    // Statistics-conservation fallback for schemes without event support.
    const HierarchyStats& after = inner_->stats();
    if (after.references != before_.references + 1 ||
        sum(after.level_hits) + after.misses != after.references)
      fail(ViolationKind::kConservation,
           "hits + misses must equal references");
  }
  ++accesses_;
  if (traits_.supported && options_.sweep_interval > 0 &&
      accesses_ % options_.sweep_interval == 0) {
    sweep();
  }
}

void CheckedHierarchy::reset_stats() { inner_->reset_stats(); }

void CheckedHierarchy::final_check() {
  if (traits_.supported) sweep();
  if (journal_ != nullptr) {
    std::string why;
    if (!journal_->laws_hold(why))
      fail(ViolationKind::kDurability,
           "write-back journal law violated: " + why);
  }
}

SchemePtr make_checked(SchemePtr inner, CheckOptions options) {
  return std::make_unique<CheckedHierarchy>(std::move(inner), std::move(options));
}

}  // namespace ulc
