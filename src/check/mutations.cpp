#include "check/mutations.h"

#include <memory>
#include <string>

#include "ulc/uni_lru_stack.h"
#include "util/ensure.h"

namespace ulc {

namespace {

class MutantScheme final : public MultiLevelScheme {
 public:
  MutantScheme(SchemePtr inner, Mutation mutation)
      : inner_(std::move(inner)), mutation_(mutation) {
    ULC_REQUIRE(inner_ != nullptr, "mutant needs a scheme to break");
    name_ = std::string("mutant(") + inner_->name() + ")";
    if (mutation_ == Mutation::kMisorderYardstick) {
      // A tiny private uniLRUstack whose level-0 yardstick is corrupted by
      // writing the node's level field directly, bypassing set_level's
      // count/yardstick bookkeeping — the bug class the auditor's
      // independent stack walk must catch.
      side_stack_ = std::make_unique<UniLruStack>(2);
      side_stack_->push_top(1, 0);
      side_stack_->push_top(2, 0);
      side_stack_->find(1)->level = 1;
    }
  }

  void set_audit_sink(std::vector<AuditEvent>* sink) override {
    outer_ = sink;
    inner_->set_audit_sink(sink == nullptr ? nullptr : &buffer_);
  }

  void access(const Request& request) override {
    buffer_.clear();
    inner_->access(request);
    if (mutation_ == Mutation::kStatsDrop) {
      tampered_ = inner_->stats();
      if (!stats_dropped_ && tampered_.misses > 0) {
        --tampered_.misses;
        stats_dropped_ = true;
      }
    }
    if (outer_ == nullptr) return;
    bool tampered_once = false;
    std::size_t evicts_kept = 0;
    for (const AuditEvent& e : buffer_) {
      AuditEvent out = e;
      switch (mutation_) {
        case Mutation::kDoublePlace:
          if (!tampered_once && e.kind == AuditEvent::Kind::kPlace) {
            outer_->push_back(out);
            tampered_once = true;
          }
          break;
        case Mutation::kSkipDemote:
          if (!tampered_once && (e.kind == AuditEvent::Kind::kDemote ||
                                 e.kind == AuditEvent::Kind::kDemoteMerge)) {
            tampered_once = true;
            continue;  // the transfer happened; the narration omits it
          }
          break;
        case Mutation::kDropEvict:
          if (!tampered_once && e.kind == AuditEvent::Kind::kEvict) {
            tampered_once = true;
            continue;  // the victim left; the narration keeps it resident
          }
          break;
        case Mutation::kSizeLeak:
          // "Evict until the newcomer fits" degraded to "evict once": every
          // eviction after the access's first goes unnarrated. A unit-size
          // access never needs a second victim, so only sized traces expose
          // the leak — via the end-of-access byte-budget law.
          if (e.kind == AuditEvent::Kind::kEvict && ++evicts_kept > 1)
            continue;
          break;
        case Mutation::kGhostDemote:
          if (!tampered_once && e.kind == AuditEvent::Kind::kDemote) {
            out.block += 0x100000000ull;  // a block that is not there
            tampered_once = true;
          }
          break;
        case Mutation::kServeWrongBlock:
          if (!tampered_once && e.kind == AuditEvent::Kind::kServe) {
            out.block += 1;
            tampered_once = true;
          }
          break;
        default:
          break;
      }
      outer_->push_back(out);
    }
  }

  bool supports_resync() const override { return inner_->supports_resync(); }

  bool resync_drop(ClientId client, BlockId block, std::size_t level) override {
    if (mutation_ == Mutation::kResyncAmnesia) {
      // The recovery bug under test: the client acknowledges the lost copy
      // (narrating kLost, so the shadow model drops it) but forgets to
      // evict the stale directory entry — the scheme will later claim a
      // hit at a level the shadow knows is empty.
      if (outer_ != nullptr)
        outer_->push_back(AuditEvent{AuditEvent::Kind::kLost, block, level,
                                     kAuditNoLevel, client, false});
      return true;
    }
    const std::size_t had = buffer_.size();
    const bool dropped = inner_->resync_drop(client, block, level);
    if (outer_ != nullptr)
      outer_->insert(outer_->end(),
                     buffer_.begin() + static_cast<std::ptrdiff_t>(had),
                     buffer_.end());
    buffer_.resize(had);
    return dropped;
  }

  std::size_t resync_level(ClientId client, std::size_t level) override {
    const std::size_t had = buffer_.size();
    const std::size_t n = inner_->resync_level(client, level);
    if (outer_ != nullptr)
      outer_->insert(outer_->end(),
                     buffer_.begin() + static_cast<std::ptrdiff_t>(had),
                     buffer_.end());
    buffer_.resize(had);
    return n;
  }

  const HierarchyStats& stats() const override {
    return mutation_ == Mutation::kStatsDrop ? tampered_ : inner_->stats();
  }
  void reset_stats() override {
    inner_->reset_stats();
    if (mutation_ == Mutation::kStatsDrop) tampered_ = inner_->stats();
  }
  const char* name() const override { return name_.c_str(); }

  AuditTraits audit_traits() const override { return inner_->audit_traits(); }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    inner_->audit_resident_levels(client, block, out);
    if (mutation_ != Mutation::kLyingResidency) return;
    // Hide copies held at the bottom level (a directory that forgot them).
    const std::size_t bottom = audit_traits().capacities.size() - 1;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i] == bottom && bottom > 0) {
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return inner_->audit_level_size(client, level);
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return inner_->audit_level_bytes(client, level);
  }

  bool audit_check_internal() const override {
    // A scheme whose own self-check is as broken as its state.
    if (mutation_ == Mutation::kMisorderYardstick) return true;
    return inner_->audit_check_internal();
  }

  std::size_t audit_stack_count() const override {
    if (mutation_ == Mutation::kMisorderYardstick) return 1;
    return inner_->audit_stack_count();
  }

  const UniLruStack* audit_stack(std::size_t index) const override {
    if (mutation_ == Mutation::kMisorderYardstick) return side_stack_.get();
    return inner_->audit_stack(index);
  }

 private:
  SchemePtr inner_;
  Mutation mutation_;
  std::string name_;
  std::vector<AuditEvent>* outer_ = nullptr;
  std::vector<AuditEvent> buffer_;
  HierarchyStats tampered_;
  bool stats_dropped_ = false;
  std::unique_ptr<UniLruStack> side_stack_;
};

}  // namespace

SchemePtr make_mutant(SchemePtr inner, Mutation mutation) {
  return std::make_unique<MutantScheme>(std::move(inner), mutation);
}

}  // namespace ulc
