#include "check/mutations.h"

#include <memory>
#include <string>

#include "ulc/uni_lru_stack.h"
#include "ulc/writeback.h"
#include "util/ensure.h"

namespace ulc {

namespace {

// The kReplayReorder defect lives between the scheme and its journal: the
// appends pass straight through, but the completion side (mark_written +
// ack) runs newest-first at the end of each access, acking out of append
// order — the bug the journal's replay-order law exists to catch.
class ReorderSink final : public WritebackSink {
 public:
  void attach(WritebackSink* downstream) { downstream_ = downstream; }

  std::uint64_t append(BlockId block, std::size_t level, SizeUnits size) override {
    const std::uint64_t seq = downstream_->append(block, level, size);
    pending_.push_back(seq);
    return seq;
  }
  void mark_written(std::uint64_t seq) override { downstream_->mark_written(seq); }
  void ack(std::uint64_t seq) override { downstream_->ack(seq); }
  void record_loss(BlockId block, std::size_t level, SizeUnits size) override {
    downstream_->record_loss(block, level, size);
  }
  bool laws_hold(std::string& why) const override {
    return downstream_->laws_hold(why);
  }

  void flush_reversed() {
    for (std::size_t i = pending_.size(); i > 0; --i) {
      downstream_->mark_written(pending_[i - 1]);
      downstream_->ack(pending_[i - 1]);
    }
    pending_.clear();
  }

 private:
  WritebackSink* downstream_ = nullptr;
  std::vector<std::uint64_t> pending_;
};

class MutantScheme final : public MultiLevelScheme {
 public:
  MutantScheme(SchemePtr inner, Mutation mutation)
      : inner_(std::move(inner)), mutation_(mutation) {
    ULC_REQUIRE(inner_ != nullptr, "mutant needs a scheme to break");
    name_ = std::string("mutant(") + inner_->name() + ")";
    if (tampers_stats()) tampered_ = inner_->stats();
    if (mutation_ == Mutation::kMisorderYardstick) {
      // A tiny private uniLRUstack whose level-0 yardstick is corrupted by
      // writing the node's level field directly, bypassing set_level's
      // count/yardstick bookkeeping — the bug class the auditor's
      // independent stack walk must catch.
      side_stack_ = std::make_unique<UniLruStack>(2);
      side_stack_->push_top(1, 0);
      side_stack_->push_top(2, 0);
      side_stack_->find(1)->level = 1;
    }
  }

  void set_audit_sink(std::vector<AuditEvent>* sink) override {
    outer_ = sink;
    inner_->set_audit_sink(sink == nullptr ? nullptr : &buffer_);
  }

  void set_writeback_journal(WritebackSink* journal) override {
    if (mutation_ == Mutation::kReplayReorder) {
      reorder_sink_.attach(journal);
      inner_->set_writeback_journal(journal == nullptr ? nullptr
                                                       : &reorder_sink_);
    } else {
      inner_->set_writeback_journal(journal);
    }
  }

  void access(const Request& request) override {
    buffer_.clear();
    inner_->access(request);
    tamper_events(request);
    if (mutation_ == Mutation::kReplayReorder) reorder_sink_.flush_reversed();
    if (tampers_stats()) {
      tampered_ = inner_->stats();
      if (mutation_ == Mutation::kStatsDrop) {
        if (!stats_dropped_ && tampered_.misses > 0) {
          --tampered_.misses;
          stats_dropped_ = true;
        }
      } else {
        // The write-back defects keep the counter consistent with their
        // tampered narration, so only the durability laws can see them.
        tampered_.writebacks += injected_writebacks_;
        tampered_.writebacks -= suppressed_writebacks_;
      }
    }
  }

  bool supports_resync() const override { return inner_->supports_resync(); }

 private:
  bool tampers_stats() const {
    return mutation_ == Mutation::kStatsDrop ||
           mutation_ == Mutation::kDropDirty ||
           mutation_ == Mutation::kAckBeforeWrite;
  }

  bool writeback_in_buffer(BlockId block) const {
    for (const AuditEvent& e : buffer_)
      if (e.kind == AuditEvent::Kind::kWriteback && e.block == block)
        return true;
    return false;
  }

  void tamper_events(const Request& request) {
    if (outer_ == nullptr) return;
    bool tampered_once = false;
    std::size_t evicts_kept = 0;
    for (const AuditEvent& e : buffer_) {
      AuditEvent out = e;
      switch (mutation_) {
        case Mutation::kDoublePlace:
          if (!tampered_once && e.kind == AuditEvent::Kind::kPlace) {
            outer_->push_back(out);
            tampered_once = true;
          }
          break;
        case Mutation::kSkipDemote:
          if (!tampered_once && (e.kind == AuditEvent::Kind::kDemote ||
                                 e.kind == AuditEvent::Kind::kDemoteMerge)) {
            tampered_once = true;
            continue;  // the transfer happened; the narration omits it
          }
          break;
        case Mutation::kDropEvict:
          if (!tampered_once && e.kind == AuditEvent::Kind::kEvict) {
            tampered_once = true;
            continue;  // the victim left; the narration keeps it resident
          }
          break;
        case Mutation::kSizeLeak:
          // "Evict until the newcomer fits" degraded to "evict once": every
          // eviction after the access's first goes unnarrated. A unit-size
          // access never needs a second victim, so only sized traces expose
          // the leak — via the end-of-access byte-budget law.
          if (e.kind == AuditEvent::Kind::kEvict && ++evicts_kept > 1)
            continue;
          break;
        case Mutation::kGhostDemote:
          if (!tampered_once && e.kind == AuditEvent::Kind::kDemote) {
            out.block += 0x100000000ull;  // a block that is not there
            tampered_once = true;
          }
          break;
        case Mutation::kServeWrongBlock:
          if (!tampered_once && e.kind == AuditEvent::Kind::kServe) {
            out.block += 1;
            tampered_once = true;
          }
          break;
        case Mutation::kDropDirty:
          // The dirty victim leaves with its eviction, but the write-back
          // that must precede the drop never happens: the narration and the
          // counter vanish together (the stale on-disk copy is now the only
          // copy). The straight-through write of the current block is left
          // alone so the drop hits an evicted resident block.
          if (!tampered_once && e.kind == AuditEvent::Kind::kWriteback &&
              e.block != request.block) {
            tampered_once = true;
            ++suppressed_writebacks_;
            continue;
          }
          break;
        case Mutation::kAckBeforeWrite:
          // Forward a clean victim's eviction, then claim a write-back for
          // it — acknowledging data that was never dirty. The counter is
          // bumped to match, so only the durability shadow can tell.
          if (!tampered_once && e.kind == AuditEvent::Kind::kEvict &&
              e.block != request.block && !writeback_in_buffer(e.block)) {
            outer_->push_back(out);
            outer_->push_back(AuditEvent{AuditEvent::Kind::kWriteback, e.block,
                                         e.from, kAuditNoLevel, 0, false, 1});
            ++injected_writebacks_;
            tampered_once = true;
            continue;
          }
          break;
        default:
          break;
      }
      outer_->push_back(out);
    }
  }

 public:
  bool resync_drop(ClientId client, BlockId block, std::size_t level) override {
    if (mutation_ == Mutation::kResyncAmnesia) {
      // The recovery bug under test: the client acknowledges the lost copy
      // (narrating kLost, so the shadow model drops it) but forgets to
      // evict the stale directory entry — the scheme will later claim a
      // hit at a level the shadow knows is empty.
      if (outer_ != nullptr)
        outer_->push_back(AuditEvent{AuditEvent::Kind::kLost, block, level,
                                     kAuditNoLevel, client, false});
      return true;
    }
    const std::size_t had = buffer_.size();
    const bool dropped = inner_->resync_drop(client, block, level);
    if (outer_ != nullptr)
      outer_->insert(outer_->end(),
                     buffer_.begin() + static_cast<std::ptrdiff_t>(had),
                     buffer_.end());
    buffer_.resize(had);
    return dropped;
  }

  std::size_t resync_level(ClientId client, std::size_t level) override {
    const std::size_t had = buffer_.size();
    const std::size_t n = inner_->resync_level(client, level);
    if (outer_ != nullptr)
      outer_->insert(outer_->end(),
                     buffer_.begin() + static_cast<std::ptrdiff_t>(had),
                     buffer_.end());
    buffer_.resize(had);
    return n;
  }

  const HierarchyStats& stats() const override {
    return tampers_stats() ? tampered_ : inner_->stats();
  }
  void reset_stats() override {
    inner_->reset_stats();
    if (tampers_stats()) tampered_ = inner_->stats();
  }
  const char* name() const override { return name_.c_str(); }

  AuditTraits audit_traits() const override { return inner_->audit_traits(); }

  void audit_resident_levels(ClientId client, BlockId block,
                             std::vector<std::size_t>& out) const override {
    inner_->audit_resident_levels(client, block, out);
    if (mutation_ != Mutation::kLyingResidency) return;
    // Hide copies held at the bottom level (a directory that forgot them).
    const std::size_t bottom = audit_traits().capacities.size() - 1;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i] == bottom && bottom > 0) {
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  std::size_t audit_level_size(ClientId client, std::size_t level) const override {
    return inner_->audit_level_size(client, level);
  }

  std::uint64_t audit_level_bytes(ClientId client, std::size_t level) const override {
    return inner_->audit_level_bytes(client, level);
  }

  bool audit_check_internal() const override {
    // A scheme whose own self-check is as broken as its state.
    if (mutation_ == Mutation::kMisorderYardstick) return true;
    return inner_->audit_check_internal();
  }

  std::size_t audit_stack_count() const override {
    if (mutation_ == Mutation::kMisorderYardstick) return 1;
    return inner_->audit_stack_count();
  }

  const UniLruStack* audit_stack(std::size_t index) const override {
    if (mutation_ == Mutation::kMisorderYardstick) return side_stack_.get();
    return inner_->audit_stack(index);
  }

 private:
  SchemePtr inner_;
  Mutation mutation_;
  std::string name_;
  std::vector<AuditEvent>* outer_ = nullptr;
  std::vector<AuditEvent> buffer_;
  HierarchyStats tampered_;
  bool stats_dropped_ = false;
  std::uint64_t injected_writebacks_ = 0;
  std::uint64_t suppressed_writebacks_ = 0;
  ReorderSink reorder_sink_;
  std::unique_ptr<UniLruStack> side_stack_;
};

}  // namespace

SchemePtr make_mutant(SchemePtr inner, Mutation mutation) {
  return std::make_unique<MutantScheme>(std::move(inner), mutation);
}

}  // namespace ulc
