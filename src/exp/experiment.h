// Unified parallel experiment engine.
//
// Every bench harness and the ulctool sim/compare commands describe their
// work as a list of ExperimentSpec cells — one (scheme factory, trace, cost
// model, warmup) tuple per cell — and hand it to run_matrix(), which executes
// independent cells on a fixed pool of worker threads. Traces are synthesized
// once into a shared read-only TraceCache keyed by preset+scale+seed; each
// cell owns its scheme instance, so cells never share mutable state. Results
// come back in spec order regardless of scheduling, and everything except the
// wall-clock fields is bit-identical whether the matrix ran on 1 thread or 8.
//
// The single-cell primitive is run_scheme() (hierarchy/runner.h); this layer
// adds the grid, the pool, the trace sharing, and the structured JSON results
// (see cell_to_json for the schema).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "trace/trace.h"
#include "util/json.h"

namespace ulc::exp {

// Identifies a synthesized workload: the preset name accepted by
// make_preset() plus the scale/seed knobs. Equal specs share one Trace.
struct TraceSpec {
  std::string preset;
  double scale = 1.0;
  std::uint64_t seed = 1;

  std::string key() const;
};

// Thread-safe, synthesize-once trace store. get() for the same key returns a
// reference to the same immutable Trace no matter how many threads race on
// it; distinct keys synthesize concurrently. put() registers an ad-hoc trace
// (e.g. loaded from a file) under a caller-chosen key.
class TraceCache {
 public:
  TraceCache() = default;
  TraceCache(const TraceCache&) = delete;
  TraceCache& operator=(const TraceCache&) = delete;

  const Trace& get(const TraceSpec& spec);
  const Trace& put(const std::string& key, Trace trace);

  // Number of traces actually synthesized/stored (for the one-synthesis-per-
  // key guarantee; see exp_test).
  std::size_t synthesis_count() const { return synthesized_.load(); }

 private:
  struct Entry {
    std::once_flag once;
    Trace trace;
  };
  Entry& entry_for(const std::string& key);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  std::atomic<std::size_t> synthesized_{0};
};

// Builds the scheme a cell runs. The cell's trace is passed in for factories
// that need it (make_opt_layout keeps the trace by reference).
using SchemeFactory = std::function<SchemePtr(const Trace&)>;

struct ExperimentSpec {
  std::string scheme;     // display name recorded in the result
  SchemeFactory factory;  // fresh scheme per cell
  TraceSpec trace;        // resolved through the TraceCache...
  std::shared_ptr<const Trace> trace_override;  // ...unless this is set
  CostModel model;
  double warmup_fraction = 0.1;
  // Harness-specific knobs (server capacity, link cost, ...) copied verbatim
  // into the result and its JSON, so grid rows stay self-describing.
  std::map<std::string, double> params;
};

struct CellResult {
  RunResult run;  // scheme/trace names, stats, T_ave breakdown
  double wall_seconds = 0.0;
  double refs_per_sec = 0.0;
  std::map<std::string, double> params;
  // Per-cell observability (response_ms histogram + named counters); null
  // when the matrix ran with observe=false or obs was compiled out. Owned by
  // the cell, deterministic: keyed to the cost model, never the wall clock.
  std::shared_ptr<obs::MetricsRegistry> metrics;
};

struct MatrixOptions {
  std::size_t threads = 1;
  // Optional externally-owned cache, shared across several run_matrix calls
  // (and with any extra serial work the harness does on the same traces).
  TraceCache* cache = nullptr;
  // Collect per-cell response-time histograms and counters (cheap: a few
  // vector compares per reference). observe=false restores the bare runner.
  bool observe = true;
  // A cell at least this many references long whose scheme declares
  // supports_partitioned_replay() is split into per-client subsequences and
  // replayed on up to `threads` workers, each against a fresh scheme
  // instance, with the per-partition counters summed in fixed partition
  // order afterwards. Integer counters make that merge exact, so the cell's
  // result is byte-identical to a serial replay at any thread count. Only
  // engages with observe=false (the per-reference latency stream is
  // inherently serial: its simulated clock interleaves all clients).
  std::size_t partition_min_references = std::size_t{1} << 20;
};

// Executes every cell, using `options.threads` workers, and returns results
// in the same order as `specs`.
std::vector<CellResult> run_matrix(const std::vector<ExperimentSpec>& specs,
                                   const MatrixOptions& options = {});

// Generic order-preserving parallel loop used by the harnesses whose cells
// are not scheme replays (measure analysis, protocol simulation): runs
// fn(0..n-1) on min(threads, n) workers and rethrows the first exception.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

// ---- Structured results ----
//
// Cell schema (stable; tests/golden/cell_result.golden.json is the contract):
//   scheme, trace            names
//   references               measured references (post-warmup)
//   hit_ratios[]             per-level hit ratios, top first
//   miss_ratio
//   demotion_ratios[]        per-boundary demotions per reference
//   reload_ratios[]          per-boundary disk reloads per reference
//   counters{}               raw per-level counters (counters_to_json)
//   response_ms{}            per-reference critical-path latency histogram
//                            (count/mean/min/max/p50/p95/p99; null with
//                            observe=false, all-null fields when 0 samples)
//   t_ave_ms + time{hit_ms, miss_ms, demotion_ms, reload_disk_ms,
//                   writeback_disk_ms}
//   wall_seconds, refs_per_sec   (the only nondeterministic fields)
//   params{}                 harness knobs from the spec
Json cell_to_json(const CellResult& cell);
Json results_to_json(const std::vector<CellResult>& cells);

}  // namespace ulc::exp
