#include "exp/experiment.h"

#include <algorithm>
#include <exception>
#include <span>
#include <thread>

#include "util/ensure.h"
#include "util/wallclock.h"
#include "workloads/paper_presets.h"

namespace ulc::exp {

std::string TraceSpec::key() const {
  return preset + "@" + Json::format_double(scale) + "#" + std::to_string(seed);
}

TraceCache::Entry& TraceCache::entry_for(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Entry>& slot = entries_[key];
  if (!slot) slot = std::make_unique<Entry>();
  return *slot;
}

const Trace& TraceCache::get(const TraceSpec& spec) {
  Entry& e = entry_for(spec.key());
  std::call_once(e.once, [&] {
    e.trace = make_preset(spec.preset, spec.scale, spec.seed);
    synthesized_.fetch_add(1);
  });
  return e.trace;
}

const Trace& TraceCache::put(const std::string& key, Trace trace) {
  Entry& e = entry_for(key);
  std::call_once(e.once, [&] {
    e.trace = std::move(trace);
    synthesized_.fetch_add(1);
  });
  return e.trace;
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = std::min(threads == 0 ? 1 : threads, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

namespace {

// Splits one oversized cell into per-client subsequences, replays each
// partition against a fresh scheme instance on up to `threads` workers, and
// sums the per-partition counters in fixed partition order. Sound only for
// schemes with zero cross-client state (supports_partitioned_replay() — the
// caller checks) and exact by construction: each partition keeps its
// requests in original trace order, resets stats after exactly the requests
// that precede the serial run's warmup boundary, and the merge is pure
// integer addition. Returns the same RunResult a serial run_scheme would.
RunResult run_partitioned(const ExperimentSpec& spec, const Trace& trace,
                          const MultiLevelScheme& probe, std::size_t threads) {
  ULC_REQUIRE(spec.warmup_fraction >= 0.0 && spec.warmup_fraction < 1.0,
              "warmup fraction must be in [0, 1)");
  const std::vector<Request>& all = trace.requests();
  ClientId max_client = 0;
  for (const Request& r : all) max_client = std::max(max_client, r.client);
  const std::size_t parts =
      std::min<std::size_t>(threads, static_cast<std::size_t>(max_client) + 1);
  // Deterministic split: client c rides partition c % parts, original order
  // preserved within each partition. The serial warmup boundary (reset
  // before reference `warmup`) maps to resetting each partition after its
  // share of the first `warmup` references.
  const std::size_t warmup = static_cast<std::size_t>(
      spec.warmup_fraction * static_cast<double>(all.size()));
  std::vector<std::vector<Request>> sub(parts);
  std::vector<std::size_t> sub_warmup(parts, 0);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::size_t p = all[i].client % parts;
    if (i < warmup) ++sub_warmup[p];
    sub[p].push_back(all[i]);
  }
  std::vector<HierarchyStats> part_stats(parts);
  parallel_for(parts, parts, [&](std::size_t p) {
    SchemePtr scheme = spec.factory(trace);
    const std::span<const Request> reqs(sub[p]);
    scheme->access_batch(reqs.first(sub_warmup[p]));
    scheme->reset_stats();
    scheme->access_batch(reqs.subspan(sub_warmup[p]));
    part_stats[p] = scheme->stats();
  });
  RunResult result;
  result.scheme = probe.name();
  result.trace = trace.name();
  result.stats.resize(0);
  for (const HierarchyStats& s : part_stats) result.stats.merge_from(s);
  result.time = compute_access_time(result.stats, spec.model);
  result.t_ave_ms = result.time.total();
  return result;
}

}  // namespace

std::vector<CellResult> run_matrix(const std::vector<ExperimentSpec>& specs,
                                   const MatrixOptions& options) {
  TraceCache local_cache;
  TraceCache& cache = options.cache ? *options.cache : local_cache;
  std::vector<CellResult> results(specs.size());
  parallel_for(specs.size(), options.threads, [&](std::size_t i) {
    const ExperimentSpec& spec = specs[i];
    ULC_REQUIRE(static_cast<bool>(spec.factory), "ExperimentSpec needs a factory");
    const Trace& trace =
        spec.trace_override ? *spec.trace_override : cache.get(spec.trace);
    const WallTimer timer;
    SchemePtr scheme = spec.factory(trace);
    CellResult& cell = results[i];
    RunObservation observe;
    if (options.observe && obs::enabled()) {
      // Each cell owns its registry (no sharing across workers); results are
      // returned in spec order, so any downstream merge happens in a fixed
      // order no matter how cells were scheduled.
      cell.metrics = std::make_shared<obs::MetricsRegistry>();
      observe.metrics = cell.metrics.get();
    }
    if (cell.metrics == nullptr && options.threads > 1 &&
        trace.size() >= options.partition_min_references &&
        trace.size() > 0 && scheme->supports_partitioned_replay()) {
      cell.run = run_partitioned(spec, trace, *scheme, options.threads);
    } else {
      cell.run =
          run_scheme(*scheme, trace, spec.model, spec.warmup_fraction, observe);
    }
    cell.wall_seconds = timer.elapsed_seconds();
    cell.refs_per_sec = cell.wall_seconds > 0.0
                            ? static_cast<double>(trace.size()) / cell.wall_seconds
                            : 0.0;
    if (!spec.scheme.empty()) cell.run.scheme = spec.scheme;
    cell.params = spec.params;
  });
  return results;
}

Json cell_to_json(const CellResult& cell) {
  const RunResult& r = cell.run;
  Json out = Json::object();
  out.set("scheme", r.scheme);
  out.set("trace", r.trace);
  out.set("references", r.stats.references);

  Json hits = Json::array();
  for (std::size_t l = 0; l < r.stats.level_hits.size(); ++l)
    hits.push(r.stats.hit_ratio(l));
  out.set("hit_ratios", std::move(hits));
  out.set("miss_ratio", r.stats.miss_ratio());

  Json demotions = Json::array();
  for (std::size_t b = 0; b + 1 < r.stats.demotions.size(); ++b)
    demotions.push(r.stats.demotion_ratio(b));
  out.set("demotion_ratios", std::move(demotions));

  Json reloads = Json::array();
  const double n = static_cast<double>(r.stats.references);
  for (std::size_t b = 0; b + 1 < r.stats.reloads.size(); ++b)
    reloads.push(n > 0 ? static_cast<double>(r.stats.reloads[b]) / n : 0.0);
  out.set("reload_ratios", std::move(reloads));

  out.set("counters", counters_to_json(r.stats));
  if (cell.metrics) {
    const obs::LatencyHistogram* hist = cell.metrics->find_histogram("response_ms");
    out.set("response_ms", hist ? hist->to_json() : Json(nullptr));
  } else {
    out.set("response_ms", nullptr);
  }

  out.set("t_ave_ms", r.t_ave_ms);
  Json time = Json::object();
  time.set("hit_ms", r.time.hit_component);
  time.set("miss_ms", r.time.miss_component);
  time.set("demotion_ms", r.time.demotion_component);
  time.set("reload_disk_ms", r.time.reload_disk_ms);
  time.set("writeback_disk_ms", r.time.writeback_disk_ms);
  out.set("time", std::move(time));

  out.set("wall_seconds", cell.wall_seconds);
  out.set("refs_per_sec", cell.refs_per_sec);

  Json params = Json::object();
  for (const auto& [key, value] : cell.params) params.set(key, value);
  out.set("params", std::move(params));
  return out;
}

Json results_to_json(const std::vector<CellResult>& cells) {
  Json out = Json::array();
  for (const CellResult& cell : cells) out.push(cell_to_json(cell));
  return out;
}

}  // namespace ulc::exp
