#include "runtime/serving.h"

#include "util/ensure.h"
#include "util/flat_hash.h"

namespace ulc {

DirectoryServer::DirectoryServer(const DirectoryConfig& config) {
  ULC_REQUIRE(config.shards >= 1, "need at least one directory shard");
  ULC_REQUIRE(config.capacity >= 1, "directory capacity must be positive");
  shards_.reserve(config.shards);
  for (std::size_t s = 0; s < config.shards; ++s)
    shards_.push_back(std::make_unique<ServerShard>(config));
  for (auto& shard : shards_) {
    ServerShard* s = shard.get();
    shard->worker = std::thread([this, s] { run_worker(*s); });
  }
}

DirectoryServer::~DirectoryServer() { stop(); }

std::size_t DirectoryServer::shard_of(BlockId block) const {
  // Same mixer as the cache's shard routing: when directory shards == cache
  // shards each queue gets exactly one producing cache shard, so its event
  // stream is totally ordered.
  return static_cast<std::size_t>(splitmix64_mix(block) % shards_.size());
}

void DirectoryServer::on_placement(const PlacementEvent& event) {
  ServerShard& shard = *shards_[shard_of(event.block)];
  // Count the post before pushing so drain() never observes applied > posted
  // settle below a concurrent post it raced with; a rejected push (stopped
  // server) takes the count back.
  shard.posted.fetch_add(1, std::memory_order_relaxed);
  if (!shard.queue.push(event))
    shard.posted.fetch_sub(1, std::memory_order_relaxed);
}

void DirectoryServer::run_worker(ServerShard& shard) {
  std::vector<PlacementEvent> batch;
  while (shard.queue.pop_wait(batch) > 0) {
    std::lock_guard<std::mutex> guard(shard.lock);
    for (const PlacementEvent& event : batch) apply(shard, event);
    shard.stats.applied += batch.size();
    shard.applied_cv.notify_all();
  }
}

void DirectoryServer::apply(ServerShard& shard, const PlacementEvent& event) {
  switch (event.kind) {
    case PlacementEventKind::kStore:
      ++shard.stats.stores;
      shard.stats.evictions +=
          shard.directory.place(event.block, event.shard).count();
      break;
    case PlacementEventKind::kPromote:
      ++shard.stats.promotes;
      shard.stats.evictions +=
          shard.directory.place(event.block, event.shard).count();
      break;
    case PlacementEventKind::kDemote:
      ++shard.stats.demotes;
      shard.stats.evictions +=
          shard.directory.place(event.block, event.shard).count();
      break;
    case PlacementEventKind::kDiscard:
      ++shard.stats.discards;
      shard.directory.take(event.block);
      break;
    case PlacementEventKind::kWriteback:
      // Write-backs move bytes, not residency; the directory only counts
      // them (a replicated deployment would invalidate peer copies here).
      ++shard.stats.writebacks;
      break;
  }
}

void DirectoryServer::drain() {
  for (auto& shard : shards_) {
    const std::uint64_t target = shard->posted.load(std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(shard->lock);
    shard->applied_cv.wait(lock, [&] { return shard->stats.applied >= target; });
  }
}

void DirectoryServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    // pop_wait keeps delivering until the closed queue is empty, so the
    // worker applies everything queued before exiting.
    if (shard->worker.joinable()) shard->worker.join();
  }
}

bool DirectoryServer::tracks(BlockId block) const {
  const ServerShard& shard = *shards_[shard_of(block)];
  std::lock_guard<std::mutex> guard(shard.lock);
  return shard.directory.contains(block);
}

std::uint32_t DirectoryServer::owner_of(BlockId block) const {
  const ServerShard& shard = *shards_[shard_of(block)];
  std::lock_guard<std::mutex> guard(shard.lock);
  ULC_REQUIRE(shard.directory.contains(block), "block not tracked");
  return shard.directory.owner_of(block);
}

DirectoryStats DirectoryServer::stats() const {
  DirectoryStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard->lock);
    DirectoryShardStats s = shard->stats;
    s.resident = shard->directory.size();
    s.queue = shard->queue.stats();
    out.shards.push_back(s);
  }
  return out;
}

ServingRuntime::ServingRuntime(const ServingConfig& config, Origin& backing)
    : config_(config), origin_(make_synchronized_origin(backing)) {
  ULC_REQUIRE(config.cache_shards >= 1, "need at least one cache shard");
  if (config_.enable_directory)
    directory_ = std::make_unique<DirectoryServer>(config_.directory);
  const std::size_t near_blocks = config_.near_blocks_per_shard;
  const std::size_t block_size = config_.per_shard.block_size;
  cache_ = std::make_unique<ShardedBlockCache>(
      config_.per_shard, config_.cache_shards,
      [near_blocks, block_size](std::size_t) {
        return make_memory_near_tier(near_blocks, block_size);
      },
      *origin_);
  if (directory_) cache_->set_placement_listener(directory_.get());
}

ServingRuntime::~ServingRuntime() = default;

void ServingRuntime::drain() {
  if (directory_) directory_->drain();
}

}  // namespace ulc
