// The concurrent serving runtime: ULC as a server (ROADMAP item 1).
//
// Layout (the OrangeFS ucache idiom — flat per-shard tables, all cross-shard
// traffic over explicit queues):
//
//   client threads ──> ShardedBlockCache (shard-per-lock BlockCache engines)
//                          │ PlacementEvent (demotions, stores, discards)
//                          ▼
//                      BoundedMpsc queues (one per directory shard)
//                          │ drained by one worker thread each
//                          ▼
//                      DirectoryServer (sharded gLRU directory)
//
// The DirectoryServer maintains an asynchronous global view of which cache
// shard owns which block, in per-shard GlruServer stacks keyed by the same
// splitmix64 routing as the cache. It is deliberately *advisory*: events
// arrive after the cache has already acted, so the directory approximates
// the cache population (a real deployment would use it to route peer
// lookups). The queues are bounded — a client that outruns the directory
// blocks in push(), which is the backpressure contract.
//
// Determinism is per-queue: each cache shard emits its events in lock order,
// and when directory_shards == cache_shards every queue has exactly one
// producing cache shard, so each directory stack applies a well-defined
// sequence. Across shards no global order is promised (DESIGN.md §10).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/sharded_cache.h"
#include "ulc/glru_server.h"
#include "util/mpsc.h"

namespace ulc {

struct DirectoryConfig {
  std::size_t shards = 2;            // directory (server) shards, >= 1
  std::size_t queue_capacity = 4096; // per-shard event queue bound
  std::size_t capacity = 1 << 16;    // gLRU entries per directory shard
};

struct DirectoryShardStats {
  std::uint64_t stores = 0;
  std::uint64_t promotes = 0;
  std::uint64_t demotes = 0;
  std::uint64_t discards = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t evictions = 0;  // directory entries displaced by gLRU
  std::uint64_t applied = 0;    // events applied to this shard's stack
  std::size_t resident = 0;     // current directory entries
  MpscStats queue;
};

struct DirectoryStats {
  std::vector<DirectoryShardStats> shards;

  std::uint64_t applied() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.applied;
    return n;
  }
  std::uint64_t resident() const {
    std::uint64_t n = 0;
    for (const auto& s : shards) n += s.resident;
    return n;
  }
};

// Sharded gLRU block directory fed by PlacementEvents over bounded MPSC
// queues, one consumer thread per directory shard.
class DirectoryServer final : public PlacementListener {
 public:
  explicit DirectoryServer(const DirectoryConfig& config);
  ~DirectoryServer();  // stop()s: closes queues, drains, joins workers

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  // Producer side (called by BlockCache under its shard lock): route the
  // event to its directory shard's queue. Blocks when the queue is full;
  // drops the event once the server is stopped.
  void on_placement(const PlacementEvent& event) override;

  // Waits until every event posted so far has been applied. Meaningful once
  // producers are quiescent (a racing producer can post more afterwards).
  void drain();

  // Closes the queues, lets the workers drain what is queued, joins them.
  // Further events are dropped. Idempotent.
  void stop();

  // True if the directory currently tracks `block`; which shard owns it.
  // Asynchronous: reflects the events applied so far, not the cache's
  // instantaneous state.
  bool tracks(BlockId block) const;
  std::uint32_t owner_of(BlockId block) const;  // block must be tracked

  std::size_t shards() const { return shards_.size(); }
  DirectoryStats stats() const;

 private:
  struct ServerShard {
    explicit ServerShard(const DirectoryConfig& config)
        : queue(config.queue_capacity), directory(config.capacity) {}

    BoundedMpsc<PlacementEvent> queue;
    std::atomic<std::uint64_t> posted{0};

    mutable std::mutex lock;  // guards directory + stats below
    std::condition_variable applied_cv;
    GlruServer directory;
    DirectoryShardStats stats;

    std::thread worker;
  };

  std::size_t shard_of(BlockId block) const;
  void run_worker(ServerShard& shard);
  void apply(ServerShard& shard, const PlacementEvent& event);

  std::vector<std::unique_ptr<ServerShard>> shards_;
  bool stopped_ = false;
};

// Everything a serving process needs, wired together: a synchronized view of
// the backing origin, per-shard memory near tiers, the sharded cache, and
// the directory server listening to it.
struct ServingConfig {
  BlockCacheConfig per_shard;              // RAM pool + block size per shard
  std::size_t cache_shards = 4;
  std::size_t near_blocks_per_shard = 4096;
  DirectoryConfig directory;
  bool enable_directory = true;
};

class ServingRuntime {
 public:
  // `backing` need not be thread-safe (it is wrapped) and must outlive the
  // runtime.
  ServingRuntime(const ServingConfig& config, Origin& backing);
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  void read(BlockId block, std::span<std::byte> out) { cache_->read(block, out); }
  void write(BlockId block, std::span<const std::byte> in) { cache_->write(block, in); }
  void flush() { cache_->flush(); }

  ShardedBlockCache& cache() { return *cache_; }
  // Null when the directory is disabled.
  DirectoryServer* directory() { return directory_.get(); }

  // Waits for the directory to catch up with everything posted so far.
  void drain();

 private:
  ServingConfig config_;
  std::unique_ptr<Origin> origin_;  // synchronized wrapper over `backing`
  // Destruction order matters: cache_ is destroyed first (its flush still
  // posts events), then the directory stops and joins its workers.
  std::unique_ptr<DirectoryServer> directory_;
  std::unique_ptr<ShardedBlockCache> cache_;
};

}  // namespace ulc
