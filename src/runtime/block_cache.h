// BlockCache — an embeddable, thread-safe two-tier block cache with ULC
// placement. This is the paper's protocol running over real bytes rather
// than trace metadata: a RAM buffer pool (tier L1) in front of a NearTier
// (tier L2, e.g. an SSD cache file) in front of the Origin.
//
// The ULC engine decides, per access, where a block belongs; BlockCache
// moves the data accordingly: Retrieve commands become tier fetches, Demote
// commands become near-tier stores, discards of dirty blocks become origin
// write-backs. Blocks the engine declines to cache are served straight
// through (the caller receives a copy; nothing is retained).
//
// Thread safety: all mutating operations are serialized by one internal
// mutex (the engine's metadata operations are O(1), so the lock is held
// briefly except during tier/origin IO). Hot counters are relaxed atomics,
// so stats() is lock-free: a monitoring thread never queues behind an
// in-flight origin read. ShardedBlockCache layers N of these for callers
// whose access rate outgrows one lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/tier.h"
#include "ulc/ulc_client.h"
#include "ulc/writeback.h"

namespace ulc {

struct BlockCacheConfig {
  std::size_t block_size = 8192;
  std::size_t memory_blocks = 1024;  // tier-L1 buffer pool size
};

struct BlockCacheStats {
  std::uint64_t memory_hits = 0;    // served from the RAM pool
  std::uint64_t near_hits = 0;      // served from the near tier
  std::uint64_t origin_reads = 0;   // misses
  std::uint64_t demotions = 0;      // RAM -> near-tier block movements
  std::uint64_t writebacks = 0;     // dirty blocks written to the origin
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

// Data-movement notifications for an external directory (the serving
// runtime's sharded gLRU server consumes these over MPSC queues). Each event
// names the block, the cache shard that owns it, and what happened to it.
enum class PlacementEventKind : std::uint8_t {
  kStore,      // block materialized in a cache tier (miss fill / demote target)
  kPromote,    // moved up from the near tier into RAM
  kDemote,     // moved down from RAM into the near tier
  kDiscard,    // dropped from the cache entirely
  kWriteback,  // dirty bytes pushed to the origin
};

struct PlacementEvent {
  BlockId block = 0;
  std::uint32_t shard = 0;  // owning cache shard (0 for a standalone cache)
  PlacementEventKind kind = PlacementEventKind::kStore;
};

class PlacementListener {
 public:
  virtual ~PlacementListener() = default;
  // Called with the cache's internal lock held; implementations must be fast
  // and must never call back into the cache (hand off to a queue instead).
  virtual void on_placement(const PlacementEvent& event) = 0;
};

class BlockCache {
 public:
  // The tiers must outlive the cache. near.block_size() must match.
  BlockCache(const BlockCacheConfig& config, NearTier& near, Origin& origin);
  ~BlockCache();

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  // Copies the block's current contents into `out` (>= block_size bytes).
  void read(BlockId block, std::span<std::byte> out);
  // Replaces the block's contents from `in` (>= block_size bytes).
  void write(BlockId block, std::span<const std::byte> in);

  // Writes every dirty block back to the origin in ascending block order
  // (cached copies stay valid).
  void flush();

  // Sorted snapshot of the currently dirty block ids, and a single-block
  // flush (no-op when the block is not dirty). ShardedBlockCache composes
  // these into a globally block-ordered cross-shard flush.
  std::vector<BlockId> dirty_blocks() const;
  void flush_block(BlockId block);

  // Optional write-back journal: every dirty block written to the origin is
  // appended, marked written when origin.write returns, and acknowledged —
  // the same pipeline the simulated hierarchies narrate. Pass nullptr to
  // detach. The sink must outlive the cache (or be detached before
  // destruction; note ~BlockCache flushes).
  void set_writeback_journal(WritebackSink* journal);

  // Optional placement listener; events carry `shard` as their owner id.
  // Pass nullptr to detach. The listener must outlive the cache (or be
  // detached before destruction; note ~BlockCache flushes).
  void set_placement_listener(PlacementListener* listener, std::uint32_t shard);

  BlockCacheStats stats() const;  // lock-free (relaxed counter reads)
  std::size_t block_size() const { return config_.block_size; }

  // Test support: true if the block currently occupies a RAM buffer.
  bool resident_in_memory(BlockId block) const;

 private:
  struct Buffer {
    std::byte* data = nullptr;
  };

  // Mutated under lock_, read lock-free by stats(): relaxed ordering is
  // enough because each counter is independent (no cross-counter invariant
  // is promised to concurrent readers).
  struct Counters {
    std::atomic<std::uint64_t> memory_hits{0};
    std::atomic<std::uint64_t> near_hits{0};
    std::atomic<std::uint64_t> origin_reads{0};
    std::atomic<std::uint64_t> demotions{0};
    std::atomic<std::uint64_t> writebacks{0};
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };

  // All private methods require lock_ to be held.
  std::byte* buffer_data(std::size_t index) { return &arena_[index * config_.block_size]; }
  std::size_t acquire_buffer();
  void release_buffer(std::size_t index);
  void notify(BlockId block, PlacementEventKind kind);
  // Applies the engine's outcome for `block` whose fresh contents are in
  // `scratch` (filled from wherever it was served). Returns nothing; updates
  // residency, near tier, and write-back state.
  void apply_placement(BlockId block, const UlcAccess& outcome,
                       std::span<const std::byte> contents, bool dirtying);
  void handle_demotions(const UlcAccess& outcome);
  // Pushes the block's bytes to the origin through the journal pipeline
  // (append -> write -> mark_written -> ack). `from` is the tier the dirty
  // data is leaving (0 = RAM, 1 = near tier).
  void writeback(BlockId block, std::size_t from,
                 std::span<const std::byte> contents);
  // Writes one dirty block back (resident buffer or pinned near-tier fetch)
  // and clears its dirty bit. The block must be in dirty_.
  void write_back_dirty_locked(BlockId block);

  BlockCacheConfig config_;
  NearTier& near_;
  Origin& origin_;

  mutable std::mutex lock_;
  UlcClient engine_;
  std::vector<std::byte> arena_;
  std::vector<std::size_t> free_buffers_;
  std::unordered_map<BlockId, std::size_t> resident_;  // block -> buffer index
  std::unordered_set<BlockId> dirty_;  // dirty wherever the block now lives
  std::vector<std::byte> scratch_;
  std::vector<std::byte> scratch2_;  // demotion-path IO (keeps scratch_ valid)
  WritebackSink* journal_ = nullptr;
  PlacementListener* listener_ = nullptr;
  std::uint32_t shard_id_ = 0;
  Counters counters_;
};

}  // namespace ulc
