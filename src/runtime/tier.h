// Storage-tier interfaces for the embeddable runtime cache, plus in-memory
// and file-backed implementations.
//
// The runtime's hierarchy is: RAM buffer pool (managed by BlockCache) over a
// NearTier (e.g. an SSD cache file) over the Origin (the real data source).
// The ULC engine decides which tier holds which block; these interfaces
// move the actual bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>

#include "trace/types.h"

namespace ulc {

// The second cache tier. It stores whatever blocks the ULC engine directs to
// it; it makes no replacement decisions of its own (capacity is enforced by
// the engine's placement, the tier only reports it).
//
// Pinning (bio.c-style buffer refcounts): a writer pins a block for the
// duration of a write-back so the block cannot be evicted out from under
// the in-flight IO. Pins nest; evict() of a pinned block is a caller
// contract violation and aborts.
class NearTier {
 public:
  virtual ~NearTier() = default;

  // Reads a block previously store()d; returns false if absent.
  virtual bool fetch(BlockId block, std::span<std::byte> out) = 0;
  // Stores (or overwrites) a block.
  virtual void store(BlockId block, std::span<const std::byte> data) = 0;
  // Drops a block (no data movement). Refuses (aborts) while pinned.
  void evict(BlockId block);

  // Refcounted pin/unpin around an in-flight write-back.
  void pin(BlockId block);
  void unpin(BlockId block);
  std::uint32_t pin_count(BlockId block) const;

  virtual std::size_t capacity_blocks() const = 0;
  virtual std::size_t block_size() const = 0;

 protected:
  // The actual drop, called only once the pin check has passed.
  virtual void do_evict(BlockId block) = 0;

 private:
  std::unordered_map<BlockId, std::uint32_t> pins_;
};

// The authoritative backing store.
class Origin {
 public:
  virtual ~Origin() = default;

  // Reads a block; blocks never written before read as zeroes.
  virtual void read(BlockId block, std::span<std::byte> out) = 0;
  virtual void write(BlockId block, std::span<const std::byte> data) = 0;
};

// RAM-backed implementations (tests, small data sets).
std::unique_ptr<NearTier> make_memory_near_tier(std::size_t capacity_blocks,
                                                std::size_t block_size = 8192);
std::unique_ptr<Origin> make_memory_origin(std::size_t block_size = 8192);

// File-backed implementations: the near tier keeps a slot-mapped cache file
// (an SSD cache in practice); the origin reads/writes a flat image file at
// block * block_size offsets, growing it on demand.
std::unique_ptr<NearTier> make_file_near_tier(const std::string& path,
                                              std::size_t capacity_blocks,
                                              std::size_t block_size = 8192);
std::unique_ptr<Origin> make_file_origin(const std::string& path,
                                         std::size_t block_size = 8192);

}  // namespace ulc
