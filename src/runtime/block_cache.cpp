#include "runtime/block_cache.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/ensure.h"

namespace ulc {

namespace {

UlcConfig engine_config(const BlockCacheConfig& cfg, const NearTier& near) {
  UlcConfig out;
  out.capacities = {cfg.memory_blocks, near.capacity_blocks()};
  return out;
}

inline void bump(std::atomic<std::uint64_t>& counter) {
  counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

BlockCache::BlockCache(const BlockCacheConfig& config, NearTier& near,
                       Origin& origin)
    : config_(config),
      near_(near),
      origin_(origin),
      engine_(engine_config(config, near)) {
  ULC_REQUIRE(config.block_size > 0, "block size must be positive");
  ULC_REQUIRE(config.memory_blocks >= 1, "need at least one RAM buffer");
  ULC_REQUIRE(near.block_size() == config.block_size,
              "near tier block size mismatch");
  arena_.resize(config.block_size * config.memory_blocks);
  free_buffers_.reserve(config.memory_blocks);
  for (std::size_t i = config.memory_blocks; i-- > 0;) free_buffers_.push_back(i);
  scratch_.resize(config.block_size);
  scratch2_.resize(config.block_size);
}

BlockCache::~BlockCache() {
  // Durability on destruction: push dirty data to the origin.
  flush();
}

std::size_t BlockCache::acquire_buffer() {
  ULC_ENSURE(!free_buffers_.empty(),
             "RAM pool exhausted: engine placement must bound residency");
  const std::size_t index = free_buffers_.back();
  free_buffers_.pop_back();
  return index;
}

void BlockCache::release_buffer(std::size_t index) {
  free_buffers_.push_back(index);
}

void BlockCache::set_writeback_journal(WritebackSink* journal) {
  std::lock_guard<std::mutex> guard(lock_);
  journal_ = journal;
}

void BlockCache::set_placement_listener(PlacementListener* listener,
                                        std::uint32_t shard) {
  std::lock_guard<std::mutex> guard(lock_);
  listener_ = listener;
  shard_id_ = shard;
}

void BlockCache::notify(BlockId block, PlacementEventKind kind) {
  if (listener_ != nullptr)
    listener_->on_placement(PlacementEvent{block, shard_id_, kind});
}

void BlockCache::writeback(BlockId block, std::size_t from,
                           std::span<const std::byte> contents) {
  if (journal_ != nullptr) {
    const std::uint64_t seq = journal_->append(
        block, from, static_cast<SizeUnits>(config_.block_size));
    origin_.write(block, contents);
    journal_->mark_written(seq);
    journal_->ack(seq);
  } else {
    origin_.write(block, contents);
  }
  bump(counters_.writebacks);
  notify(block, PlacementEventKind::kWriteback);
}

void BlockCache::handle_demotions(const UlcAccess& outcome) {
  for (const DemoteCmd& d : outcome.demotions) {
    if (d.from == 0) {
      auto it = resident_.find(d.block);
      ULC_ENSURE(it != resident_.end(), "demoted block not resident in RAM");
      const std::byte* data = buffer_data(it->second);
      if (d.to == 1) {
        near_.store(d.block, std::span(data, config_.block_size));
        bump(counters_.demotions);
        notify(d.block, PlacementEventKind::kDemote);
      } else {
        // Discard from RAM: dirty data must reach the origin first. The
        // RAM buffer is freed only after the write-back returns.
        if (dirty_.erase(d.block) > 0)
          writeback(d.block, 0, std::span(data, config_.block_size));
        notify(d.block, PlacementEventKind::kDiscard);
      }
      release_buffer(it->second);
      resident_.erase(it);
    } else {
      // Leaving the near tier; in a two-tier cache that means discard.
      ULC_ENSURE(d.to == kLevelOut, "two-tier cache demotes near-tier blocks out");
      if (dirty_.erase(d.block) > 0) {
        // Pin for the write-back window: the tier refuses to evict the
        // block while its bytes are being copied out.
        near_.pin(d.block);
        const bool ok = near_.fetch(d.block, scratch2_);
        ULC_ENSURE(ok, "dirty near-tier block missing");
        writeback(d.block, 1, scratch2_);
        near_.unpin(d.block);
      }
      near_.evict(d.block);
      notify(d.block, PlacementEventKind::kDiscard);
    }
  }
}

void BlockCache::apply_placement(BlockId block, const UlcAccess& outcome,
                                 std::span<const std::byte> contents,
                                 bool dirtying) {
  if (outcome.placed_level == 0) {
    auto it = resident_.find(block);
    std::size_t buf;
    if (it == resident_.end()) {
      buf = acquire_buffer();
      resident_[block] = buf;
      notify(block, outcome.hit_level == 1 ? PlacementEventKind::kPromote
                                           : PlacementEventKind::kStore);
    } else {
      buf = it->second;
    }
    if (buffer_data(buf) != contents.data())
      std::memcpy(buffer_data(buf), contents.data(), config_.block_size);
    if (outcome.hit_level == 1) near_.evict(block);  // exclusive move up
    if (dirtying) dirty_.insert(block);
  } else if (outcome.placed_level == 1) {
    // Stays at / goes to the near tier. On a near-tier read hit nothing
    // moves; writes and fresh placements must store the bytes.
    if (dirtying || outcome.hit_level != 1) {
      near_.store(block, contents);
      if (outcome.hit_level != 1) notify(block, PlacementEventKind::kStore);
    }
    if (dirtying) dirty_.insert(block);
  } else {
    // Not cached anywhere: pass-through. A write goes straight to the
    // origin; a read retains nothing.
    if (dirtying) writeback(block, 0, contents);
  }
}

void BlockCache::read(BlockId block, std::span<std::byte> out) {
  ULC_REQUIRE(out.size() >= config_.block_size, "read buffer too small");
  std::lock_guard<std::mutex> guard(lock_);
  bump(counters_.reads);
  const UlcAccess& a = engine_.access(block);

  const std::byte* source = nullptr;
  if (a.hit_level == 0) {
    bump(counters_.memory_hits);
    source = buffer_data(resident_.at(block));
  } else if (a.hit_level == 1) {
    bump(counters_.near_hits);
    const bool ok = near_.fetch(block, scratch_);
    ULC_ENSURE(ok, "engine says near-tier hit but the tier lacks the block");
    source = scratch_.data();
  } else {
    bump(counters_.origin_reads);
    origin_.read(block, scratch_);
    source = scratch_.data();
  }
  std::memcpy(out.data(), source, config_.block_size);

  // Demotions first: they free the RAM buffer a promotion may need. They
  // never touch the just-accessed block (it sits at the stack top) and use
  // their own scratch buffer, so `source` stays valid.
  handle_demotions(a);
  apply_placement(block, a, std::span(source, config_.block_size),
                  /*dirtying=*/false);
}

void BlockCache::write(BlockId block, std::span<const std::byte> in) {
  ULC_REQUIRE(in.size() >= config_.block_size, "write buffer too small");
  std::lock_guard<std::mutex> guard(lock_);
  bump(counters_.writes);
  const UlcAccess& a = engine_.access(block);
  if (a.hit_level == 0) {
    bump(counters_.memory_hits);
  } else if (a.hit_level == 1) {
    bump(counters_.near_hits);
  }
  // A whole-block write does not need the old contents; the new bytes are
  // placed per the engine's direction.
  handle_demotions(a);
  apply_placement(block, a, in.subspan(0, config_.block_size),
                  /*dirtying=*/true);
}

void BlockCache::write_back_dirty_locked(BlockId block) {
  auto it = resident_.find(block);
  if (it != resident_.end()) {
    writeback(block, 0,
              std::span(buffer_data(it->second), config_.block_size));
  } else {
    near_.pin(block);
    const bool ok = near_.fetch(block, scratch_);
    ULC_ENSURE(ok, "dirty block missing from both tiers");
    writeback(block, 1, scratch_);
    near_.unpin(block);
  }
  dirty_.erase(block);
}

void BlockCache::flush() {
  std::lock_guard<std::mutex> guard(lock_);
  // Write back in block order: the hash-set iteration order must not leak
  // into the sequence of origin writes (determinism across runs/platforms).
  std::vector<BlockId> to_flush(dirty_.begin(), dirty_.end());
  std::sort(to_flush.begin(), to_flush.end());
  for (BlockId block : to_flush) write_back_dirty_locked(block);
}

std::vector<BlockId> BlockCache::dirty_blocks() const {
  std::lock_guard<std::mutex> guard(lock_);
  std::vector<BlockId> out(dirty_.begin(), dirty_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void BlockCache::flush_block(BlockId block) {
  std::lock_guard<std::mutex> guard(lock_);
  if (dirty_.count(block) == 0) return;
  write_back_dirty_locked(block);
}

BlockCacheStats BlockCache::stats() const {
  // Deliberately lock-free: concurrent readers/writers publish each counter
  // with relaxed atomics, so a monitoring thread never waits behind IO.
  BlockCacheStats out;
  out.memory_hits = counters_.memory_hits.load(std::memory_order_relaxed);
  out.near_hits = counters_.near_hits.load(std::memory_order_relaxed);
  out.origin_reads = counters_.origin_reads.load(std::memory_order_relaxed);
  out.demotions = counters_.demotions.load(std::memory_order_relaxed);
  out.writebacks = counters_.writebacks.load(std::memory_order_relaxed);
  out.reads = counters_.reads.load(std::memory_order_relaxed);
  out.writes = counters_.writes.load(std::memory_order_relaxed);
  return out;
}

bool BlockCache::resident_in_memory(BlockId block) const {
  std::lock_guard<std::mutex> guard(lock_);
  return resident_.count(block) != 0;
}

}  // namespace ulc
