#include "runtime/tier.h"

#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/ensure.h"

namespace ulc {

void NearTier::evict(BlockId block) {
  ULC_REQUIRE(pin_count(block) == 0,
              "evicting a pinned block (write-back still in flight)");
  do_evict(block);
}

void NearTier::pin(BlockId block) { ++pins_[block]; }

void NearTier::unpin(BlockId block) {
  auto it = pins_.find(block);
  ULC_REQUIRE(it != pins_.end(), "unpin of a block that holds no pin");
  if (--it->second == 0) pins_.erase(it);
}

std::uint32_t NearTier::pin_count(BlockId block) const {
  auto it = pins_.find(block);
  return it == pins_.end() ? 0 : it->second;
}

namespace {

class MemoryNearTier final : public NearTier {
 public:
  MemoryNearTier(std::size_t capacity, std::size_t block_size)
      : capacity_(capacity), block_size_(block_size) {}

  bool fetch(BlockId block, std::span<std::byte> out) override {
    ULC_REQUIRE(out.size() >= block_size_, "fetch buffer too small");
    auto it = store_.find(block);
    if (it == store_.end()) return false;
    std::memcpy(out.data(), it->second.data(), block_size_);
    return true;
  }

  void store(BlockId block, std::span<const std::byte> data) override {
    ULC_REQUIRE(data.size() >= block_size_, "store buffer too small");
    auto& slot = store_[block];
    slot.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(block_size_));
    ULC_ENSURE(store_.size() <= capacity_ + 1,
               "near tier overfilled: the placement engine must bound it");
  }

  std::size_t capacity_blocks() const override { return capacity_; }
  std::size_t block_size() const override { return block_size_; }

 protected:
  void do_evict(BlockId block) override { store_.erase(block); }

 private:
  std::size_t capacity_;
  std::size_t block_size_;
  std::unordered_map<BlockId, std::vector<std::byte>> store_;
};

class MemoryOrigin final : public Origin {
 public:
  explicit MemoryOrigin(std::size_t block_size) : block_size_(block_size) {}

  void read(BlockId block, std::span<std::byte> out) override {
    ULC_REQUIRE(out.size() >= block_size_, "read buffer too small");
    auto it = store_.find(block);
    if (it == store_.end()) {
      std::memset(out.data(), 0, block_size_);
      return;
    }
    std::memcpy(out.data(), it->second.data(), block_size_);
  }

  void write(BlockId block, std::span<const std::byte> data) override {
    ULC_REQUIRE(data.size() >= block_size_, "write buffer too small");
    auto& slot = store_[block];
    slot.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(block_size_));
  }

 private:
  std::size_t block_size_;
  std::unordered_map<BlockId, std::vector<std::byte>> store_;
};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_rw(const std::string& path) {
  // Open for update, creating if needed.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (!f) f = std::fopen(path.c_str(), "w+b");
  ULC_REQUIRE(f != nullptr, "cannot open tier file");
  return FilePtr(f);
}

// Slot-mapped cache file: block contents live in fixed slots; a directory
// maps block id -> slot, with a free list of vacated slots.
class FileNearTier final : public NearTier {
 public:
  FileNearTier(const std::string& path, std::size_t capacity, std::size_t block_size)
      : file_(open_rw(path)), capacity_(capacity), block_size_(block_size) {}

  bool fetch(BlockId block, std::span<std::byte> out) override {
    ULC_REQUIRE(out.size() >= block_size_, "fetch buffer too small");
    auto it = slots_.find(block);
    if (it == slots_.end()) return false;
    read_slot(it->second, out);
    return true;
  }

  void store(BlockId block, std::span<const std::byte> data) override {
    ULC_REQUIRE(data.size() >= block_size_, "store buffer too small");
    std::size_t slot;
    auto it = slots_.find(block);
    if (it != slots_.end()) {
      slot = it->second;
    } else if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[block] = slot;
    } else {
      slot = next_slot_++;
      slots_[block] = slot;
    }
    const long off = static_cast<long>(slot * block_size_);
    ULC_REQUIRE(std::fseek(file_.get(), off, SEEK_SET) == 0, "tier seek failed");
    ULC_REQUIRE(std::fwrite(data.data(), 1, block_size_, file_.get()) == block_size_,
                "tier write failed");
  }

  std::size_t capacity_blocks() const override { return capacity_; }
  std::size_t block_size() const override { return block_size_; }

 protected:
  void do_evict(BlockId block) override {
    auto it = slots_.find(block);
    if (it == slots_.end()) return;
    free_slots_.push_back(it->second);
    slots_.erase(it);
  }

 private:
  void read_slot(std::size_t slot, std::span<std::byte> out) {
    const long off = static_cast<long>(slot * block_size_);
    ULC_REQUIRE(std::fseek(file_.get(), off, SEEK_SET) == 0, "tier seek failed");
    ULC_REQUIRE(std::fread(out.data(), 1, block_size_, file_.get()) == block_size_,
                "tier read failed");
  }

  FilePtr file_;
  std::size_t capacity_;
  std::size_t block_size_;
  std::unordered_map<BlockId, std::size_t> slots_;
  std::vector<std::size_t> free_slots_;
  std::size_t next_slot_ = 0;
};

class FileOrigin final : public Origin {
 public:
  FileOrigin(const std::string& path, std::size_t block_size)
      : file_(open_rw(path)), block_size_(block_size) {}

  void read(BlockId block, std::span<std::byte> out) override {
    ULC_REQUIRE(out.size() >= block_size_, "read buffer too small");
    const long off = static_cast<long>(block * block_size_);
    if (std::fseek(file_.get(), 0, SEEK_END) != 0 ||
        std::ftell(file_.get()) < off + static_cast<long>(block_size_)) {
      std::memset(out.data(), 0, block_size_);  // beyond EOF: zeroes
      return;
    }
    ULC_REQUIRE(std::fseek(file_.get(), off, SEEK_SET) == 0, "origin seek failed");
    ULC_REQUIRE(std::fread(out.data(), 1, block_size_, file_.get()) == block_size_,
                "origin read failed");
  }

  void write(BlockId block, std::span<const std::byte> data) override {
    ULC_REQUIRE(data.size() >= block_size_, "write buffer too small");
    const long off = static_cast<long>(block * block_size_);
    ULC_REQUIRE(std::fseek(file_.get(), off, SEEK_SET) == 0, "origin seek failed");
    ULC_REQUIRE(std::fwrite(data.data(), 1, block_size_, file_.get()) == block_size_,
                "origin write failed");
  }

 private:
  FilePtr file_;
  std::size_t block_size_;
};

}  // namespace

std::unique_ptr<NearTier> make_memory_near_tier(std::size_t capacity_blocks,
                                                std::size_t block_size) {
  return std::make_unique<MemoryNearTier>(capacity_blocks, block_size);
}

std::unique_ptr<Origin> make_memory_origin(std::size_t block_size) {
  return std::make_unique<MemoryOrigin>(block_size);
}

std::unique_ptr<NearTier> make_file_near_tier(const std::string& path,
                                              std::size_t capacity_blocks,
                                              std::size_t block_size) {
  return std::make_unique<FileNearTier>(path, capacity_blocks, block_size);
}

std::unique_ptr<Origin> make_file_origin(const std::string& path,
                                         std::size_t block_size) {
  return std::make_unique<FileOrigin>(path, block_size);
}

}  // namespace ulc
