// ShardedBlockCache — N independent BlockCache shards routed by block-id
// hash, for embedders whose access rate outgrows one engine lock.
//
// Each shard has its own ULC engine, RAM pool slice and near tier, so shard
// operations never contend; only the origin is shared (wrap a non-thread-
// safe Origin with make_synchronized_origin). Placement quality degrades
// gracefully: each shard ranks its own 1/N of the block population against
// 1/N of the capacity, which preserves ULC's behaviour for workloads whose
// locality is not correlated with the hash (tests check the hit-rate parity
// against a single shard).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/block_cache.h"

namespace ulc {

// Serializes a non-thread-safe Origin behind a mutex.
std::unique_ptr<Origin> make_synchronized_origin(Origin& inner);

class ShardedBlockCache {
 public:
  using NearTierFactory = std::function<std::unique_ptr<NearTier>(std::size_t shard)>;

  // `per_shard` applies to every shard (memory_blocks per shard). The
  // factory creates one near tier per shard. `origin` must be thread-safe
  // (wrap with make_synchronized_origin if needed) and outlive the cache.
  ShardedBlockCache(const BlockCacheConfig& per_shard, std::size_t shards,
                    const NearTierFactory& near_factory, Origin& origin);

  void read(BlockId block, std::span<std::byte> out);
  void write(BlockId block, std::span<const std::byte> in);
  void flush();

  BlockCacheStats stats() const;  // aggregated over shards
  std::size_t shards() const { return shards_.size(); }
  std::size_t block_size() const { return block_size_; }

 private:
  struct Shard {
    std::unique_ptr<NearTier> near;
    std::unique_ptr<BlockCache> cache;
  };

  BlockCache& shard_for(BlockId block);

  std::size_t block_size_;
  std::vector<Shard> shards_;
};

}  // namespace ulc
