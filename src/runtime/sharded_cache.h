// ShardedBlockCache — N independent BlockCache shards routed by block-id
// hash, for embedders whose access rate outgrows one engine lock.
//
// Each shard has its own ULC engine, RAM pool slice and near tier, so shard
// operations never contend; only the origin is shared (wrap a non-thread-
// safe Origin with make_synchronized_origin). Placement quality degrades
// gracefully: each shard ranks its own 1/N of the block population against
// 1/N of the capacity, which preserves ULC's behaviour for workloads whose
// locality is not correlated with the hash (tests check the hit-rate parity
// against a single shard).
//
// Routing goes through the splitmix64 finalizer (the same mixer FlatMap
// uses), not raw block-id bits: structured id spaces — sequential streaming
// segments, power-of-two strides — would otherwise pile onto a few shards
// and turn the shard layer into a single lock with extra steps.
//
// Determinism is per-shard, not global: concurrent callers interleave across
// shard locks however the scheduler likes, but each shard's engine sees a
// well-defined access sequence. The one cross-shard ordering this class does
// promise is flush(): dirty blocks are written back to the shared origin in
// ascending block-id order across all shards, so a quiescent flush produces
// a byte-identical origin write sequence regardless of shard count.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "runtime/block_cache.h"

namespace ulc {

// Serializes a non-thread-safe Origin behind a mutex.
std::unique_ptr<Origin> make_synchronized_origin(Origin& inner);

class ShardedBlockCache {
 public:
  using NearTierFactory = std::function<std::unique_ptr<NearTier>(std::size_t shard)>;

  // `per_shard` applies to every shard (memory_blocks per shard). The
  // factory creates one near tier per shard. `origin` must be thread-safe
  // (wrap with make_synchronized_origin if needed) and outlive the cache.
  ShardedBlockCache(const BlockCacheConfig& per_shard, std::size_t shards,
                    const NearTierFactory& near_factory, Origin& origin);

  void read(BlockId block, std::span<std::byte> out);
  void write(BlockId block, std::span<const std::byte> in);

  // Writes every dirty block back to the origin in ascending block-id order
  // across all shards (matching BlockCache::flush's in-shard order). Only
  // quiescent flushes are deterministic: concurrent writers can re-dirty
  // blocks while the sweep runs.
  void flush();

  // Installs `listener` on every shard (shard index as the event owner id).
  // Pass nullptr to detach. Same lifetime contract as BlockCache's.
  void set_placement_listener(PlacementListener* listener);

  BlockCacheStats stats() const;  // aggregated over shards; lock-free
  std::size_t shards() const { return shards_.size(); }
  std::size_t block_size() const { return block_size_; }

  // The shard index `block` routes to (stable for the cache's lifetime).
  std::size_t shard_of(BlockId block) const;

 private:
  struct Shard {
    std::unique_ptr<NearTier> near;
    std::unique_ptr<BlockCache> cache;
  };

  BlockCache& shard_for(BlockId block);

  std::size_t block_size_;
  std::vector<Shard> shards_;
};

}  // namespace ulc
