#include "runtime/sharded_cache.h"

#include <mutex>

#include "util/ensure.h"

namespace ulc {

namespace {

class SynchronizedOrigin final : public Origin {
 public:
  explicit SynchronizedOrigin(Origin& inner) : inner_(inner) {}

  void read(BlockId block, std::span<std::byte> out) override {
    std::lock_guard<std::mutex> guard(lock_);
    inner_.read(block, out);
  }

  void write(BlockId block, std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> guard(lock_);
    inner_.write(block, data);
  }

 private:
  Origin& inner_;
  std::mutex lock_;
};

// Fibonacci hashing spreads sequential block ids across shards.
inline std::size_t shard_index(BlockId block, std::size_t shards) {
  return static_cast<std::size_t>((block * 0x9e3779b97f4a7c15ULL) >> 32) % shards;
}

}  // namespace

std::unique_ptr<Origin> make_synchronized_origin(Origin& inner) {
  return std::make_unique<SynchronizedOrigin>(inner);
}

ShardedBlockCache::ShardedBlockCache(const BlockCacheConfig& per_shard,
                                     std::size_t shards,
                                     const NearTierFactory& near_factory,
                                     Origin& origin)
    : block_size_(per_shard.block_size) {
  ULC_REQUIRE(shards >= 1, "need at least one shard");
  ULC_REQUIRE(near_factory != nullptr, "need a near-tier factory");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    Shard shard;
    shard.near = near_factory(s);
    ULC_REQUIRE(shard.near != nullptr, "near-tier factory returned null");
    shard.cache = std::make_unique<BlockCache>(per_shard, *shard.near, origin);
    shards_.push_back(std::move(shard));
  }
}

BlockCache& ShardedBlockCache::shard_for(BlockId block) {
  return *shards_[shard_index(block, shards_.size())].cache;
}

void ShardedBlockCache::read(BlockId block, std::span<std::byte> out) {
  shard_for(block).read(block, out);
}

void ShardedBlockCache::write(BlockId block, std::span<const std::byte> in) {
  shard_for(block).write(block, in);
}

void ShardedBlockCache::flush() {
  for (Shard& shard : shards_) shard.cache->flush();
}

BlockCacheStats ShardedBlockCache::stats() const {
  BlockCacheStats total;
  for (const Shard& shard : shards_) {
    const BlockCacheStats s = shard.cache->stats();
    total.memory_hits += s.memory_hits;
    total.near_hits += s.near_hits;
    total.origin_reads += s.origin_reads;
    total.demotions += s.demotions;
    total.writebacks += s.writebacks;
    total.reads += s.reads;
    total.writes += s.writes;
  }
  return total;
}

}  // namespace ulc
