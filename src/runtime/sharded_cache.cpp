#include "runtime/sharded_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "util/ensure.h"
#include "util/flat_hash.h"

namespace ulc {

namespace {

class SynchronizedOrigin final : public Origin {
 public:
  explicit SynchronizedOrigin(Origin& inner) : inner_(inner) {}

  void read(BlockId block, std::span<std::byte> out) override {
    std::lock_guard<std::mutex> guard(lock_);
    inner_.read(block, out);
  }

  void write(BlockId block, std::span<const std::byte> data) override {
    std::lock_guard<std::mutex> guard(lock_);
    inner_.write(block, data);
  }

 private:
  Origin& inner_;
  std::mutex lock_;
};

// Route through the splitmix64 finalizer (FlatMap's mixer): every input bit
// influences every output bit, so structured id spaces — sequential
// streaming segments, strided scans — spread evenly. The previous Fibonacci
// multiply alone left low-entropy ids correlated after the >> 32.
inline std::size_t shard_index(BlockId block, std::size_t shards) {
  return static_cast<std::size_t>(splitmix64_mix(block) % shards);
}

}  // namespace

std::unique_ptr<Origin> make_synchronized_origin(Origin& inner) {
  return std::make_unique<SynchronizedOrigin>(inner);
}

ShardedBlockCache::ShardedBlockCache(const BlockCacheConfig& per_shard,
                                     std::size_t shards,
                                     const NearTierFactory& near_factory,
                                     Origin& origin)
    : block_size_(per_shard.block_size) {
  ULC_REQUIRE(shards >= 1, "need at least one shard");
  ULC_REQUIRE(near_factory != nullptr, "need a near-tier factory");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    Shard shard;
    shard.near = near_factory(s);
    ULC_REQUIRE(shard.near != nullptr, "near-tier factory returned null");
    shard.cache = std::make_unique<BlockCache>(per_shard, *shard.near, origin);
    shards_.push_back(std::move(shard));
  }
}

std::size_t ShardedBlockCache::shard_of(BlockId block) const {
  return shard_index(block, shards_.size());
}

BlockCache& ShardedBlockCache::shard_for(BlockId block) {
  return *shards_[shard_index(block, shards_.size())].cache;
}

void ShardedBlockCache::read(BlockId block, std::span<std::byte> out) {
  shard_for(block).read(block, out);
}

void ShardedBlockCache::write(BlockId block, std::span<const std::byte> in) {
  shard_for(block).write(block, in);
}

void ShardedBlockCache::flush() {
  // Deterministic cross-shard order: gather every shard's dirty set, sort
  // globally by block id, and flush one block at a time. Flushing shards
  // back-to-back instead would interleave origin writes by shard index,
  // so the shared origin's write sequence (and any journal behind it)
  // would depend on the shard count.
  std::vector<std::pair<BlockId, std::size_t>> dirty;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (BlockId block : shards_[s].cache->dirty_blocks())
      dirty.emplace_back(block, s);
  }
  std::sort(dirty.begin(), dirty.end());
  for (const auto& [block, s] : dirty) shards_[s].cache->flush_block(block);
}

void ShardedBlockCache::set_placement_listener(PlacementListener* listener) {
  for (std::size_t s = 0; s < shards_.size(); ++s)
    shards_[s].cache->set_placement_listener(listener,
                                             static_cast<std::uint32_t>(s));
}

BlockCacheStats ShardedBlockCache::stats() const {
  BlockCacheStats total;
  for (const Shard& shard : shards_) {
    const BlockCacheStats s = shard.cache->stats();
    total.memory_hits += s.memory_hits;
    total.near_hits += s.near_hits;
    total.origin_reads += s.origin_reads;
    total.demotions += s.demotions;
    total.writebacks += s.writebacks;
    total.reads += s.reads;
    total.writes += s.writes;
  }
  return total;
}

}  // namespace ulc
