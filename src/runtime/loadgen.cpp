#include "runtime/loadgen.h"

#include <cstring>
#include <thread>
#include <vector>

#include "util/ensure.h"
#include "util/prng.h"
#include "util/wallclock.h"
#include "workloads/synthetic.h"

namespace ulc {

namespace {

PatternPtr make_source(const LoadGenConfig& config) {
  if (config.workload == "zipf") {
    return make_zipf_source(/*base=*/0, config.footprint_blocks,
                            config.zipf_theta, /*scramble=*/true,
                            /*scramble_seed=*/config.seed);
  }
  if (config.workload == "streaming") return make_streaming_source(config.streaming);
  ULC_REQUIRE(false, "unknown workload (expected zipf or streaming)");
  return nullptr;
}

// Deterministic whole-block payload so concurrent readers always observe
// some writer's complete pattern (the stress tests rely on this shape too).
void fill_block(std::vector<std::byte>& buf, BlockId block, std::uint64_t salt) {
  SplitMix64 gen(block * 1000003ULL + salt);
  for (std::size_t i = 0; i + 8 <= buf.size(); i += 8) {
    const std::uint64_t v = gen.next();
    std::memcpy(&buf[i], &v, 8);
  }
}

struct WorkerOutput {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  obs::LatencyHistogram latency_ms;
};

void run_worker(const LoadGenConfig& config, ServingRuntime& runtime,
                const WallTimer& timer, std::size_t tid, std::uint64_t n_requests,
                WorkerOutput& out) {
  // Per-thread deterministic stream: own rng, own source over the shared
  // workload shape (streaming threads are independent viewer sessions over
  // one catalogue layout).
  Rng rng(config.seed * 0x9e3779b9ULL + tid + 1);
  PatternPtr source = make_source(config);
  const std::size_t block_size = config.serving.per_shard.block_size;
  std::vector<std::byte> buf(block_size);

  for (std::uint64_t i = 0; i < n_requests; ++i) {
    double start = timer.elapsed_seconds();
    if (config.rate > 0.0) {
      // Open loop: request i is due at i/rate regardless of how the server
      // is keeping up; lateness is part of the measured latency.
      const double scheduled = static_cast<double>(i) / config.rate;
      while (timer.elapsed_seconds() < scheduled) std::this_thread::yield();
      start = scheduled;
    }
    const BlockId block = source->next(rng);
    if (rng.next_bool(config.write_frac)) {
      fill_block(buf, block, /*salt=*/i);
      runtime.write(block, buf);
      ++out.writes;
    } else {
      runtime.read(block, buf);
      ++out.reads;
    }
    out.latency_ms.record((timer.elapsed_seconds() - start) * 1e3);
    ++out.requests;
  }
}

Json cache_stats_to_json(const BlockCacheStats& s) {
  Json j = Json::object();
  j.set("reads", s.reads);
  j.set("writes", s.writes);
  j.set("memory_hits", s.memory_hits);
  j.set("near_hits", s.near_hits);
  j.set("origin_reads", s.origin_reads);
  j.set("demotions", s.demotions);
  j.set("writebacks", s.writebacks);
  return j;
}

Json directory_stats_to_json(const DirectoryStats& d) {
  Json j = Json::object();
  j.set("applied", d.applied());
  j.set("resident", d.resident());
  Json shards = Json::array();
  for (const DirectoryShardStats& s : d.shards) {
    Json row = Json::object();
    row.set("applied", s.applied);
    row.set("resident", static_cast<std::uint64_t>(s.resident));
    row.set("stores", s.stores);
    row.set("promotes", s.promotes);
    row.set("demotes", s.demotes);
    row.set("discards", s.discards);
    row.set("writebacks", s.writebacks);
    row.set("evictions", s.evictions);
    Json queue = Json::object();
    queue.set("enqueued", s.queue.enqueued);
    queue.set("dequeued", s.queue.dequeued);
    queue.set("rejected", s.queue.rejected);
    queue.set("producer_waits", s.queue.producer_waits);
    queue.set("max_depth", s.queue.max_depth);
    row.set("queue", std::move(queue));
    shards.push(std::move(row));
  }
  j.set("shards", std::move(shards));
  return j;
}

}  // namespace

LoadGenResult run_serving_load(const LoadGenConfig& config) {
  ULC_REQUIRE(config.threads >= 1, "need at least one load thread");
  ULC_REQUIRE(config.requests >= 1, "need at least one request");

  auto backing = make_memory_origin(config.serving.per_shard.block_size);
  ServingRuntime runtime(config.serving, *backing);

  // Warm checkpoint for the streaming family: the catalogue layout must be
  // identical across threads, which make_streaming_source guarantees via
  // layout_seed — nothing to do here beyond construction.
  std::vector<WorkerOutput> outputs(config.threads);
  std::vector<std::thread> workers;
  workers.reserve(config.threads);
  const std::uint64_t base_n = config.requests / config.threads;
  const std::uint64_t extra = config.requests % config.threads;

  const WallTimer timer;
  for (std::size_t t = 0; t < config.threads; ++t) {
    const std::uint64_t n = base_n + (t < extra ? 1 : 0);
    workers.emplace_back([&config, &runtime, &timer, t, n, &outputs] {
      run_worker(config, runtime, timer, t, n, outputs[t]);
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall = timer.elapsed_seconds();

  runtime.drain();

  LoadGenResult result;
  for (const WorkerOutput& out : outputs) {  // fixed thread order
    result.requests += out.requests;
    result.reads += out.reads;
    result.writes += out.writes;
    result.latency_ms.merge(out.latency_ms);
  }
  result.wall_seconds = wall;
  result.requests_per_sec =
      wall > 0.0 ? static_cast<double>(result.requests) / wall : 0.0;
  result.cache = runtime.cache().stats();
  if (runtime.directory() != nullptr)
    result.directory = runtime.directory()->stats();
  return result;
}

Json load_result_to_json(const LoadGenConfig& config, const LoadGenResult& result) {
  Json j = Json::object();
  j.set("workload", config.workload);
  j.set("threads", static_cast<std::uint64_t>(config.threads));
  j.set("requests", result.requests);
  j.set("reads", result.reads);
  j.set("writes", result.writes);
  j.set("write_frac", config.write_frac);
  j.set("rate_per_thread", config.rate);
  j.set("seed", config.seed);
  Json shape = Json::object();
  shape.set("cache_shards", static_cast<std::uint64_t>(config.serving.cache_shards));
  shape.set("memory_blocks_per_shard",
            static_cast<std::uint64_t>(config.serving.per_shard.memory_blocks));
  shape.set("near_blocks_per_shard",
            static_cast<std::uint64_t>(config.serving.near_blocks_per_shard));
  shape.set("block_size", static_cast<std::uint64_t>(config.serving.per_shard.block_size));
  shape.set("directory_shards",
            config.serving.enable_directory
                ? Json(static_cast<std::uint64_t>(config.serving.directory.shards))
                : Json(nullptr));
  j.set("shape", std::move(shape));
  j.set("wall_seconds", result.wall_seconds);
  j.set("requests_per_sec", result.requests_per_sec);
  j.set("latency_ms", result.latency_ms.to_json());
  j.set("cache", cache_stats_to_json(result.cache));
  j.set("directory", directory_stats_to_json(result.directory));
  return j;
}

}  // namespace ulc
