// Multi-threaded load generator for the serving runtime.
//
// Replays the synthetic workload families (Zipf point accesses, streaming
// sessions) against a ServingRuntime from N client threads and reports
// sustained requests/sec plus per-request latency percentiles from the obs
// histograms. Two pacing modes:
//
//   rate == 0  closed-loop saturation: each thread issues its next request
//              the moment the previous one completes. This is the
//              throughput-measuring mode (BENCH_serving.json).
//   rate > 0   open-loop: each thread schedules request i at i/rate seconds
//              and latency is measured from the *scheduled* start, so queue
//              delay from a lagging server shows up in the percentiles
//              instead of being absorbed by coordinated omission.
//
// The request streams are deterministic per (seed, thread); wall_seconds,
// requests_per_sec and the latency histogram are machine measurements and
// are excluded from determinism comparisons (the same contract as every
// other bench's wall-clock fields).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "runtime/serving.h"
#include "util/json.h"
#include "workloads/streaming.h"

namespace ulc {

struct LoadGenConfig {
  std::string workload = "zipf";  // "zipf" | "streaming"
  std::uint64_t requests = 100000;  // total, split across threads
  std::size_t threads = 1;
  double write_frac = 0.1;   // probability a request is a whole-block write
  double rate = 0.0;         // per-thread requests/sec; 0 = closed loop
  std::uint64_t seed = 1;

  // Zipf workload shape.
  std::uint64_t footprint_blocks = 1 << 16;
  double zipf_theta = 0.9;

  // Streaming workload shape (per-thread session streams over one shared
  // catalogue layout).
  StreamingConfig streaming;

  ServingConfig serving;
};

struct LoadGenResult {
  std::uint64_t requests = 0;  // completed
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  obs::LatencyHistogram latency_ms;  // per-request, merged in thread order
  BlockCacheStats cache;
  DirectoryStats directory;  // empty shards when the directory is disabled
};

// Builds the runtime (RAM-backed origin), runs the load, drains the
// directory, and returns the merged measurements.
LoadGenResult run_serving_load(const LoadGenConfig& config);

// One JSON row for a finished run: config echo + throughput + latency
// percentiles + cache/directory counters (EXPERIMENTS.md documents the
// schema).
Json load_result_to_json(const LoadGenConfig& config, const LoadGenResult& result);

}  // namespace ulc
