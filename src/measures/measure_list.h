// Machinery for the Section-2 locality-measure study.
//
// For each measure (ND, R, NLD, LLD-R) the paper keeps an ascendingly ordered
// list of all accessed blocks, divides the *full length* of the list into 10
// equal segments, and per reference records (a) which segment the referenced
// block was found in and (b) how many blocks move across each segment
// boundary. SegmentAccountant implements the fixed-boundary bookkeeping;
// SortedMeasureList is the incremental ordered-list engine used by the
// measures where only the referenced block is repositioned per reference
// (ND, R, NLD). LLD-R, whose ordering drifts as recencies grow past LLDs, is
// handled by a counting-sort engine in analyzers.cpp.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/types.h"

namespace ulc {

inline constexpr std::size_t kSegments = 10;

// Fixed segmentation of a list whose final length is known up front (the
// total number of distinct blocks in the trace, as in the paper).
class SegmentAccountant {
 public:
  explicit SegmentAccountant(std::size_t final_length);

  // Segment index (0..9) of a list rank.
  std::size_t segment_of(std::size_t rank) const;

  // Records that the referenced block was found at `rank`.
  void count_reference(std::size_t rank);
  // Records that the referenced block was found in segment `seg` directly.
  void count_reference_in_segment(std::size_t seg);
  void count_cold_reference() { ++cold_references_; }

  // Records the downward boundary crossings implied by one element moving
  // from rank `from` to rank `to` in a list (all displaced elements shift by
  // one): exactly one block crosses each boundary strictly inside
  // (min(from,to), max(from,to)].
  void count_move(std::size_t from, std::size_t to);
  // Records that one block moved from segment `from_seg` down to `to_seg`.
  void count_segment_move(std::size_t from_seg, std::size_t to_seg);

  std::uint64_t references() const { return references_ + cold_references_; }
  std::uint64_t cold_references() const { return cold_references_; }
  std::uint64_t segment_references(std::size_t s) const { return seg_refs_[s]; }
  std::uint64_t boundary_crossings(std::size_t b) const { return crossings_[b]; }

  // boundary_rank(b) = first rank belonging to segment b+1.
  std::size_t boundary_rank(std::size_t b) const { return boundaries_[b]; }

 private:
  std::size_t final_length_;
  // boundaries_[k] = rank of the first element of segment k+1, k = 0..8.
  std::vector<std::size_t> boundaries_;
  std::vector<std::uint64_t> seg_refs_ = std::vector<std::uint64_t>(kSegments, 0);
  std::vector<std::uint64_t> crossings_ = std::vector<std::uint64_t>(kSegments - 1, 0);
  std::uint64_t references_ = 0;
  std::uint64_t cold_references_ = 0;
};

// An array-backed list of blocks kept sorted ascending by (key, tie); ties
// get a fresh monotone counter on every (re)keying, so equal keys order by
// update time. A block's rank is recovered by binary search on its stored
// (key, tie) — keys are unique pairs — which keeps repositioning at
// O(log n + move distance) with no per-shift index maintenance.
class SortedMeasureList {
 public:
  struct Entry {
    BlockId block;
    std::uint64_t key;
    std::uint64_t tie;
  };

  bool contains(BlockId block) const { return keys_.count(block) != 0; }
  std::size_t size() const { return entries_.size(); }

  // Current rank of a present block. Aborts if absent.
  std::size_t rank_of(BlockId block) const;

  // Inserts an absent block with the given key; returns its rank.
  std::size_t insert(BlockId block, std::uint64_t key);
  // Re-keys a present block, repositioning it; returns {old, new} rank.
  // A call with the block's current key is a no-op returning {r, r}.
  std::pair<std::size_t, std::size_t> update(BlockId block, std::uint64_t key);

  std::uint64_t key_of(BlockId block) const;
  const Entry& at(std::size_t rank) const { return entries_[rank]; }

  bool check_consistency() const;

 private:
  std::vector<Entry> entries_;
  // block -> (key, tie) as currently stored in entries_.
  std::unordered_map<BlockId, std::pair<std::uint64_t, std::uint64_t>> keys_;
  std::uint64_t tie_counter_ = 0;

  std::size_t lower_bound_rank(std::uint64_t key, std::uint64_t tie) const;
};

}  // namespace ulc
