#include "measures/measure_list.h"

#include <algorithm>

#include "util/ensure.h"

namespace ulc {

SegmentAccountant::SegmentAccountant(std::size_t final_length)
    : final_length_(final_length) {
  ULC_REQUIRE(final_length >= kSegments, "list too short to split into 10 segments");
  boundaries_.resize(kSegments - 1);
  for (std::size_t k = 0; k + 1 < kSegments; ++k)
    boundaries_[k] = (k + 1) * final_length_ / kSegments;
}

std::size_t SegmentAccountant::segment_of(std::size_t rank) const {
  // Number of boundaries at or below `rank`.
  std::size_t s = 0;
  while (s + 1 < kSegments && rank >= boundaries_[s]) ++s;
  return s;
}

void SegmentAccountant::count_reference(std::size_t rank) {
  count_reference_in_segment(segment_of(rank));
}

void SegmentAccountant::count_reference_in_segment(std::size_t seg) {
  ULC_REQUIRE(seg < kSegments, "segment out of range");
  ++references_;
  ++seg_refs_[seg];
}

void SegmentAccountant::count_move(std::size_t from, std::size_t to) {
  const std::size_t lo = std::min(from, to);
  const std::size_t hi = std::max(from, to);
  for (std::size_t k = 0; k + 1 < kSegments; ++k) {
    if (boundaries_[k] > lo && boundaries_[k] <= hi) ++crossings_[k];
  }
}

void SegmentAccountant::count_segment_move(std::size_t from_seg, std::size_t to_seg) {
  ULC_REQUIRE(from_seg < kSegments && to_seg < kSegments, "segment out of range");
  for (std::size_t k = from_seg; k < to_seg; ++k) ++crossings_[k];
}

std::size_t SortedMeasureList::lower_bound_rank(std::uint64_t key,
                                                std::uint64_t tie) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), std::pair(key, tie),
      [](const Entry& e, const std::pair<std::uint64_t, std::uint64_t>& k) {
        return std::pair(e.key, e.tie) < k;
      });
  return static_cast<std::size_t>(it - entries_.begin());
}

std::size_t SortedMeasureList::rank_of(BlockId block) const {
  auto it = keys_.find(block);
  ULC_REQUIRE(it != keys_.end(), "rank_of absent block");
  const std::size_t r = lower_bound_rank(it->second.first, it->second.second);
  ULC_ENSURE(r < entries_.size() && entries_[r].block == block,
             "stored key does not locate its block");
  return r;
}

std::size_t SortedMeasureList::insert(BlockId block, std::uint64_t key) {
  ULC_REQUIRE(keys_.find(block) == keys_.end(), "insert of present block");
  const std::uint64_t tie = ++tie_counter_;
  const std::size_t rank = lower_bound_rank(key, tie);
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(rank),
                  Entry{block, key, tie});
  keys_.emplace(block, std::pair(key, tie));
  return rank;
}

std::pair<std::size_t, std::size_t> SortedMeasureList::update(BlockId block,
                                                              std::uint64_t key) {
  auto it = keys_.find(block);
  ULC_REQUIRE(it != keys_.end(), "update of absent block");
  const std::size_t old_rank = lower_bound_rank(it->second.first, it->second.second);
  ULC_ENSURE(old_rank < entries_.size() && entries_[old_rank].block == block,
             "stored key does not locate its block");
  if (it->second.first == key) return {old_rank, old_rank};

  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(old_rank));
  const std::uint64_t tie = ++tie_counter_;
  const std::size_t new_rank = lower_bound_rank(key, tie);
  entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(new_rank),
                  Entry{block, key, tie});
  it->second = std::pair(key, tie);
  return {old_rank, new_rank};
}

std::uint64_t SortedMeasureList::key_of(BlockId block) const {
  auto it = keys_.find(block);
  ULC_REQUIRE(it != keys_.end(), "key_of absent block");
  return it->second.first;
}

bool SortedMeasureList::check_consistency() const {
  if (keys_.size() != entries_.size()) return false;
  for (std::size_t r = 0; r < entries_.size(); ++r) {
    auto it = keys_.find(entries_[r].block);
    if (it == keys_.end() ||
        it->second != std::pair(entries_[r].key, entries_[r].tie))
      return false;
    if (r > 0 && std::pair(entries_[r - 1].key, entries_[r - 1].tie) >=
                     std::pair(entries_[r].key, entries_[r].tie))
      return false;
  }
  return true;
}

}  // namespace ulc
