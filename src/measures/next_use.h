// Offline preprocessing of a trace for the future-knowledge measures.
//
// For every reference position i the paper's Section 2 measures need:
//  * next_use[i]:       index of the next reference to the same block
//                       (kNever if none) — the basis of ND and of OPT.
//  * stack_distance[i]: the LRU stack distance (recency) of reference i,
//                       i.e. the number of *distinct* blocks referenced since
//                       the previous reference to this block (kInfinite for a
//                       block's first reference). stack_distance[next_use[i]]
//                       is exactly NLD at reference i, and stack_distance[i]
//                       is exactly LLD at reference i.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/trace.h"

namespace ulc {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kInfiniteDistance = std::numeric_limits<std::uint64_t>::max();

// next_use[i] = smallest j > i with trace[j].block == trace[i].block, or kNever.
std::vector<std::uint64_t> compute_next_use(const Trace& trace);

// stack_distance[i] = number of distinct blocks referenced in (prev(i), i),
// where prev(i) is the previous reference to the same block;
// kInfiniteDistance for first references. Computed in O(n log n) with a
// Fenwick tree over reference positions (the classic reuse-distance sweep).
std::vector<std::uint64_t> compute_stack_distances(const Trace& trace);

}  // namespace ulc
