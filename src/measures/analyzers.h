// Locality-measure analyzers reproducing the paper's Section 2 study
// (Figures 2 and 3, Table 1).
//
// Each measure keeps all accessed blocks in an ascendingly ordered list
// (strong locality first); the list's full length (= distinct blocks in the
// trace) is split into 10 equal segments. Per reference we record the
// segment the block is found in (Figure 2) and the number of blocks moving
// down across each of the 9 segment boundaries (Figure 3).
//
// Measures:
//  * ND    — next distance: time until next reference (OPT's criterion;
//            offline). Ordered by next-reference time.
//  * R     — recency: position in the LRU stack (LRU's criterion; online).
//  * NLD   — next locality distance: the recency the block will have at its
//            next reference (offline). Stable between references.
//  * LLD-R — max(last locality distance, current recency): the paper's
//            online approximation of NLD and the basis of ULC.
//
// Blocks are repositioned minimally: a reference that does not change a
// block's ordering key causes no movement (this is what makes NLD/LLD-R
// stable on looping workloads, exactly the paper's point).
#pragma once

#include <array>
#include <string>

#include "measures/measure_list.h"
#include "trace/trace.h"

namespace ulc {

enum class Measure { kND, kR, kNLD, kLLD_R };

const char* measure_name(Measure m);

struct MeasureReport {
  Measure measure = Measure::kR;
  std::string trace_name;
  std::uint64_t references = 0;
  std::uint64_t cold_references = 0;  // first touches; belong to no segment
  std::size_t distinct_blocks = 0;

  // Fraction of all references found in each segment (Figure 2 bars).
  std::array<double, kSegments> segment_ratio{};
  // Cumulative reference rate over the first N segments (Figure 2 lines).
  std::array<double, kSegments> cumulative_ratio{};
  // Downward block movements per boundary / total references (Figure 3).
  std::array<double, kSegments - 1> movement_ratio{};
};

// Runs the full trace through the measure's ordered list. Aborts if the
// trace has fewer than 10 distinct blocks.
MeasureReport analyze_measure(const Trace& trace, Measure measure);

// Convenience: all four measures for one trace.
std::array<MeasureReport, 4> analyze_all_measures(const Trace& trace);

}  // namespace ulc
