#include "measures/next_use.h"

#include <unordered_map>

#include "util/ensure.h"

namespace ulc {

std::vector<std::uint64_t> compute_next_use(const Trace& trace) {
  const std::size_t n = trace.size();
  std::vector<std::uint64_t> next(n, kNever);
  std::unordered_map<BlockId, std::uint64_t> last_seen;
  last_seen.reserve(n / 4 + 16);
  for (std::size_t i = n; i-- > 0;) {
    auto [it, inserted] = last_seen.try_emplace(trace[i].block, i);
    if (!inserted) {
      next[i] = it->second;
      it->second = i;
    }
  }
  return next;
}

namespace {

// Fenwick tree over reference positions; used to count, for a window of the
// trace, how many positions are the *most recent* reference of their block.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, int delta) {
    for (std::size_t x = i + 1; x < tree_.size(); x += x & (~x + 1))
      tree_[x] += delta;
  }

  // Sum of [0, i].
  std::int64_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (std::size_t x = i + 1; x > 0; x -= x & (~x + 1)) s += tree_[x];
    return s;
  }

  std::int64_t range(std::size_t lo, std::size_t hi) const {  // [lo, hi]
    if (lo > hi) return 0;
    return prefix(hi) - (lo == 0 ? 0 : prefix(lo - 1));
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

std::vector<std::uint64_t> compute_stack_distances(const Trace& trace) {
  const std::size_t n = trace.size();
  std::vector<std::uint64_t> dist(n, kInfiniteDistance);
  std::unordered_map<BlockId, std::size_t> last_pos;
  last_pos.reserve(n / 4 + 16);
  Fenwick marks(n);
  // Sweep forward keeping exactly one mark per distinct block — at its most
  // recent position. The number of marks strictly between prev(i) and i is
  // the number of distinct blocks referenced in that window.
  for (std::size_t i = 0; i < n; ++i) {
    const BlockId b = trace[i].block;
    auto it = last_pos.find(b);
    if (it != last_pos.end()) {
      const std::size_t prev = it->second;
      dist[i] = static_cast<std::uint64_t>(marks.range(prev + 1, i == 0 ? 0 : i - 1));
      marks.add(prev, -1);
      it->second = i;
    } else {
      last_pos.emplace(b, i);
    }
    marks.add(i, +1);
  }
  return dist;
}

}  // namespace ulc
