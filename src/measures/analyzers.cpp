#include "measures/analyzers.h"

#include <unordered_map>

#include "measures/next_use.h"
#include "util/ensure.h"

namespace ulc {

const char* measure_name(Measure m) {
  switch (m) {
    case Measure::kND:
      return "ND";
    case Measure::kR:
      return "R";
    case Measure::kNLD:
      return "NLD";
    case Measure::kLLD_R:
      return "LLD-R";
  }
  return "?";
}

namespace {

std::size_t count_distinct(const Trace& trace) {
  std::unordered_map<BlockId, bool> seen;
  seen.reserve(trace.size() / 4 + 16);
  for (const Request& r : trace) seen.emplace(r.block, true);
  return seen.size();
}

MeasureReport finish_report(const Trace& trace, Measure measure,
                            const SegmentAccountant& acct, std::size_t distinct) {
  MeasureReport rep;
  rep.measure = measure;
  rep.trace_name = trace.name();
  rep.references = acct.references();
  rep.cold_references = acct.cold_references();
  rep.distinct_blocks = distinct;
  const double total = static_cast<double>(acct.references());
  double cum = 0.0;
  for (std::size_t s = 0; s < kSegments; ++s) {
    rep.segment_ratio[s] =
        total > 0 ? static_cast<double>(acct.segment_references(s)) / total : 0.0;
    cum += rep.segment_ratio[s];
    rep.cumulative_ratio[s] = cum;
  }
  for (std::size_t b = 0; b + 1 < kSegments; ++b) {
    rep.movement_ratio[b] =
        total > 0 ? static_cast<double>(acct.boundary_crossings(b)) / total : 0.0;
  }
  return rep;
}

// ND, R, NLD: one block is repositioned per reference; the ordered list is a
// SortedMeasureList and a reference with an unchanged key causes no movement.
MeasureReport analyze_keyed(const Trace& trace, Measure measure) {
  const std::size_t distinct = count_distinct(trace);
  SegmentAccountant acct(distinct);
  SortedMeasureList list;

  std::vector<std::uint64_t> next_use;
  std::vector<std::uint64_t> stack_dist;
  if (measure == Measure::kND) {
    next_use = compute_next_use(trace);
  } else if (measure == Measure::kNLD) {
    next_use = compute_next_use(trace);
    stack_dist = compute_stack_distances(trace);
  }

  // Ordering keys must ascend with weakening locality; cap "never again" /
  // "unknown" at a sentinel beyond any real key.
  const std::uint64_t never_key = kNever - 1;

  std::unordered_map<BlockId, std::uint64_t> current_key;
  current_key.reserve(distinct * 2);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const BlockId b = trace[i].block;
    std::uint64_t key = 0;
    switch (measure) {
      case Measure::kR:
        // Most recent = strongest; invert time so keys ascend with recency.
        key = never_key - static_cast<std::uint64_t>(i);
        break;
      case Measure::kND:
        key = next_use[i] == kNever ? never_key : next_use[i];
        break;
      case Measure::kNLD:
        key = next_use[i] == kNever ? never_key : stack_dist[next_use[i]];
        break;
      case Measure::kLLD_R:
        ULC_REQUIRE(false, "LLD-R uses the counting engine");
    }

    if (list.contains(b)) {
      const std::size_t r_old = list.rank_of(b);
      acct.count_reference(r_old);
      auto it = current_key.find(b);
      if (it->second != key) {
        it->second = key;
        const auto [from, to] = list.update(b, key);
        acct.count_move(from, to);
      }
    } else {
      acct.count_cold_reference();
      const std::size_t size_before = list.size();
      const std::size_t r_new = list.insert(b, key);
      current_key.emplace(b, key);
      acct.count_move(size_before, r_new);
    }
  }
  return finish_report(trace, measure, acct, distinct);
}

// LLD-R: value_x = max(LLD_x, R_x). R (the LRU position) drifts between
// references of a block, so the whole ordering is re-derived per reference
// with a counting sort over values in [0, distinct], tie-broken by a static
// per-block slot so unchanged blocks do not shuffle.
MeasureReport analyze_lldr(const Trace& trace) {
  const std::size_t distinct = count_distinct(trace);
  SegmentAccountant acct(distinct);
  const std::vector<std::uint64_t> stack_dist = compute_stack_distances(trace);

  const std::uint32_t kNoSeg = 0xffffffffu;
  struct BlockState {
    std::uint32_t lld;      // capped at `distinct` (= infinity)
    std::uint32_t lru_pos;  // current recency
    std::uint32_t segment;  // segment at the previous recomputation
  };
  std::vector<BlockState> blocks;  // indexed by slot
  std::unordered_map<BlockId, std::uint32_t> slot_of;
  slot_of.reserve(distinct * 2);
  std::vector<std::uint32_t> lru;  // slot ids, most recent first

  const std::uint32_t inf = static_cast<std::uint32_t>(distinct);
  std::vector<std::uint32_t> bucket_start(distinct + 2, 0);

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const BlockId b = trace[i].block;
    auto it = slot_of.find(b);
    std::uint32_t slot;
    if (it != slot_of.end()) {
      slot = it->second;
      acct.count_reference_in_segment(blocks[slot].segment);
      // Move to LRU front.
      const std::uint32_t p = blocks[slot].lru_pos;
      for (std::uint32_t q = p; q > 0; --q) {
        lru[q] = lru[q - 1];
        blocks[lru[q]].lru_pos = q;
      }
      lru[0] = slot;
      blocks[slot].lru_pos = 0;
      const std::uint64_t d = stack_dist[i];
      blocks[slot].lld = d >= inf ? inf : static_cast<std::uint32_t>(d);
    } else {
      acct.count_cold_reference();
      slot = static_cast<std::uint32_t>(blocks.size());
      blocks.push_back(BlockState{inf, 0, kNoSeg});
      slot_of.emplace(b, slot);
      lru.insert(lru.begin(), slot);
      for (std::uint32_t q = 1; q < lru.size(); ++q) blocks[lru[q]].lru_pos = q;
    }

    // Re-derive ranks: counting sort by value = max(lld, lru_pos), stable in
    // slot order (static tiebreak -> no phantom movement among ties).
    const std::size_t n = blocks.size();
    std::fill(bucket_start.begin(), bucket_start.begin() + distinct + 2, 0);
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t v = std::max(blocks[s].lld, blocks[s].lru_pos);
      ++bucket_start[v + 1];
    }
    for (std::size_t v = 1; v < distinct + 2; ++v)
      bucket_start[v] += bucket_start[v - 1];
    for (std::size_t s = 0; s < n; ++s) {
      const std::uint32_t v = std::max(blocks[s].lld, blocks[s].lru_pos);
      const std::size_t rank = bucket_start[v]++;
      const std::uint32_t new_seg = static_cast<std::uint32_t>(acct.segment_of(rank));
      const std::uint32_t old_seg = blocks[s].segment;
      if (old_seg != kNoSeg && new_seg > old_seg)
        acct.count_segment_move(old_seg, new_seg);
      blocks[s].segment = new_seg;
    }
  }
  return finish_report(trace, Measure::kLLD_R, acct, distinct);
}

}  // namespace

MeasureReport analyze_measure(const Trace& trace, Measure measure) {
  ULC_REQUIRE(!trace.empty(), "cannot analyze an empty trace");
  if (measure == Measure::kLLD_R) return analyze_lldr(trace);
  return analyze_keyed(trace, measure);
}

std::array<MeasureReport, 4> analyze_all_measures(const Trace& trace) {
  return {analyze_measure(trace, Measure::kND), analyze_measure(trace, Measure::kR),
          analyze_measure(trace, Measure::kNLD),
          analyze_measure(trace, Measure::kLLD_R)};
}

}  // namespace ulc
