// A sequence container with O(log n) positional access, insert, erase, and
// rank queries — an order-statistic list implemented as an implicit treap
// with parent pointers.
//
// Section 2 of the paper maintains, for each locality measure (ND, R, NLD,
// LLD-R), an ascendingly ordered list of all accessed blocks and asks two
// questions per reference: "what is the rank (segment) of this block?" and
// "where does it move to?". Those are exactly rank() and move().
#pragma once

#include <cstdint>

#include "util/prng.h"

namespace ulc {

class OrderStatisticList {
 public:
  // Opaque stable handle to an element; valid until the element is erased.
  struct Node;
  using Handle = Node*;

  OrderStatisticList();
  ~OrderStatisticList();

  OrderStatisticList(const OrderStatisticList&) = delete;
  OrderStatisticList& operator=(const OrderStatisticList&) = delete;

  // Inserts `value` so that it occupies position `pos` (0-based; existing
  // elements at >= pos shift back). pos <= size().
  Handle insert_at(std::size_t pos, std::uint64_t value);
  Handle insert_front(std::uint64_t value) { return insert_at(0, value); }
  Handle insert_back(std::uint64_t value) { return insert_at(size(), value); }

  // Removes the element. The handle becomes invalid.
  void erase(Handle h);

  // Current 0-based position of the element. O(log n).
  std::size_t rank(Handle h) const;

  // Moves the element to position `pos` (interpreted after removal, i.e.
  // pos <= size()-1). Equivalent to erase+insert but keeps the handle valid.
  void move(Handle h, std::size_t pos);
  void move_to_front(Handle h) { move(h, 0); }
  void move_to_back(Handle h) { move(h, size() - 1); }

  // Element at position pos. O(log n).
  Handle at(std::size_t pos) const;

  std::uint64_t value(Handle h) const;
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Verifies internal structure (sizes, parent pointers, heap property).
  // Intended for tests; O(n).
  bool check_consistency() const;

 private:
  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Rng rng_;

  Node* merge(Node* a, Node* b);
  void split(Node* t, std::size_t left_count, Node*& a, Node*& b);
  Node* alloc(std::uint64_t value);
  void free_node(Node* n);
  void free_tree(Node* n);

  Node* free_list_ = nullptr;
};

}  // namespace ulc
