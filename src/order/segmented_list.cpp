#include "order/segmented_list.h"

#include "util/ensure.h"

namespace ulc {

SegmentedList::SegmentedList(std::vector<std::size_t> segment_capacities)
    : caps_(std::move(segment_capacities)),
      counts_(caps_.size(), 0),
      last_(caps_.size(), nullptr) {
  ULC_REQUIRE(!caps_.empty(), "SegmentedList needs at least one segment");
  for (std::size_t c : caps_) ULC_REQUIRE(c >= 1, "segment capacity must be >= 1");
}

SegmentedList::~SegmentedList() {
  Node* n = head_;
  while (n) {
    Node* next = n->next;
    delete n;
    n = next;
  }
  n = free_list_;
  while (n) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

SegmentedList::Node* SegmentedList::alloc(Key key) {
  Node* n;
  if (free_list_) {
    n = free_list_;
    free_list_ = n->next;
  } else {
    n = new Node();
  }
  n->key = key;
  n->segment = 0;
  n->prev = n->next = nullptr;
  return n;
}

void SegmentedList::free_node(Node* n) {
  n->next = free_list_;
  free_list_ = n;
}

void SegmentedList::unlink(Node* n) {
  if (n->prev)
    n->prev->next = n->next;
  else
    head_ = n->next;
  if (n->next)
    n->next->prev = n->prev;
  else
    tail_ = n->prev;
  n->prev = n->next = nullptr;
}

void SegmentedList::link_front(Node* n) {
  n->prev = nullptr;
  n->next = head_;
  if (head_) head_->prev = n;
  head_ = n;
  if (!tail_) tail_ = n;
}

void SegmentedList::rebalance(std::size_t from, AccessResult& out) {
  for (std::size_t s = from; s < caps_.size(); ++s) {
    if (counts_[s] <= caps_[s]) continue;
    ULC_ENSURE(counts_[s] == caps_[s] + 1, "segment can only overflow by one");
    Node* m = last_[s];
    if (s + 1 < caps_.size()) {
      // Slide m across the boundary: positionally it stays put; it becomes
      // the MRU-most member of segment s+1.
      out.crossed[s] = m->key;
      out.crossed_count = s + 1;
      --counts_[s];
      last_[s] = m->prev;  // counts_[s] >= 1 still, so prev is in segment s
      m->segment = s + 1;
      ++counts_[s + 1];
      if (counts_[s + 1] == 1) last_[s + 1] = m;
    } else {
      // Overflow past the final segment: evict from the global LRU position.
      ULC_ENSURE(m == tail_, "final-segment LRU block must be the list tail");
      out.evicted = true;
      out.evicted_key = m->key;
      --counts_[s];
      last_[s] = counts_[s] > 0 ? m->prev : nullptr;
      unlink(m);
      index_.erase(m->key);
      --size_;
      free_node(m);
    }
  }
}

void SegmentedList::access(Key key, AccessResult& out) {
  out.hit = false;
  out.old_segment = kNoSegment;
  out.crossed.resize(caps_.size());
  out.crossed_count = 0;
  out.evicted = false;

  auto it = index_.find(key);
  if (it != index_.end()) {
    Node* n = it->second;
    const std::size_t old = n->segment;
    out.hit = true;
    out.old_segment = old;
    if (old == 0 && head_ == n) {
      return;  // already MRU; nothing moves
    }
    --counts_[old];
    if (last_[old] == n) last_[old] = counts_[old] > 0 ? n->prev : nullptr;
    unlink(n);
    link_front(n);
    n->segment = 0;
    ++counts_[0];
    if (counts_[0] == 1) last_[0] = n;
    rebalance(0, out);
    return;
  }

  Node* n = alloc(key);
  link_front(n);
  ++counts_[0];
  if (counts_[0] == 1) last_[0] = n;
  index_.emplace(key, n);
  ++size_;
  rebalance(0, out);
}

bool SegmentedList::remove(Key key, AccessResult& out) {
  out.hit = false;
  out.old_segment = kNoSegment;
  out.crossed.resize(caps_.size());
  out.crossed_count = 0;
  out.evicted = false;

  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Node* n = it->second;
  out.old_segment = n->segment;
  --counts_[n->segment];
  if (last_[n->segment] == n)
    last_[n->segment] = counts_[n->segment] > 0 ? n->prev : nullptr;
  unlink(n);
  index_.erase(it);
  --size_;
  free_node(n);
  return true;
}

std::size_t SegmentedList::segment_of(Key key) const {
  auto it = index_.find(key);
  return it == index_.end() ? kNoSegment : it->second->segment;
}

bool SegmentedList::check_consistency() const {
  std::size_t seen = 0;
  std::vector<std::size_t> counts(caps_.size(), 0);
  std::size_t prev_segment = 0;
  const Node* prev = nullptr;
  for (const Node* n = head_; n; n = n->next) {
    if (n->prev != prev) return false;
    if (n->segment >= caps_.size()) return false;
    if (n->segment < prev_segment) return false;  // segments must be contiguous
    prev_segment = n->segment;
    ++counts[n->segment];
    auto it = index_.find(n->key);
    if (it == index_.end() || it->second != n) return false;
    ++seen;
    prev = n;
  }
  if (prev != tail_) return false;
  if (seen != size_ || index_.size() != size_) return false;
  for (std::size_t s = 0; s < caps_.size(); ++s) {
    if (counts[s] != counts_[s]) return false;
    if (counts_[s] > caps_[s]) return false;
    if (counts_[s] > 0) {
      if (!last_[s] || last_[s]->segment != s) return false;
      if (last_[s]->next && last_[s]->next->segment == s) return false;
    }
  }
  return true;
}

}  // namespace ulc
