#include "order/segmented_list.h"

#include "util/ensure.h"

namespace ulc {

SegmentedList::SegmentedList(std::vector<std::size_t> segment_capacities)
    : caps_(std::move(segment_capacities)),
      counts_(caps_.size(), 0),
      bytes_(caps_.size(), 0),
      last_(caps_.size(), nullptr) {
  ULC_REQUIRE(!caps_.empty(), "SegmentedList needs at least one segment");
  for (std::size_t c : caps_) ULC_REQUIRE(c >= 1, "segment capacity must be >= 1");
}

SegmentedList::~SegmentedList() {
  Node* n = head_;
  while (n) {
    Node* next = n->next;
    delete n;
    n = next;
  }
  n = free_list_;
  while (n) {
    Node* next = n->next;
    delete n;
    n = next;
  }
}

SegmentedList::Node* SegmentedList::alloc(Key key, SizeUnits size) {
  Node* n;
  if (free_list_) {
    n = free_list_;
    free_list_ = n->next;
  } else {
    n = new Node();
  }
  n->key = key;
  n->size = size;
  n->segment = 0;
  n->prev = n->next = nullptr;
  return n;
}

void SegmentedList::free_node(Node* n) {
  n->next = free_list_;
  free_list_ = n;
}

void SegmentedList::unlink(Node* n) {
  if (n->prev)
    n->prev->next = n->next;
  else
    head_ = n->next;
  if (n->next)
    n->next->prev = n->prev;
  else
    tail_ = n->prev;
  n->prev = n->next = nullptr;
}

void SegmentedList::link_front(Node* n) {
  n->prev = nullptr;
  n->next = head_;
  if (head_) head_->prev = n;
  head_ = n;
  if (!tail_) tail_ = n;
}

void SegmentedList::detach_from_segment(Node* n) {
  const std::size_t s = n->segment;
  --counts_[s];
  bytes_[s] -= n->size;
  if (last_[s] == n) {
    // With counts_[s] > 0 the predecessor is still in segment s (segments
    // are contiguous and n was the segment's LRU-most node).
    last_[s] = counts_[s] > 0 ? n->prev : nullptr;
  }
}

void SegmentedList::rebalance(std::size_t from, AccessResult& out) {
  for (std::size_t s = from; s < caps_.size(); ++s) {
    // A sized insert can overflow a segment by more than one unit, so keep
    // sliding the segment's LRU-most block down until the budget holds. At
    // unit size this loop body runs at most once per boundary.
    while (bytes_[s] > caps_[s]) {
      Node* m = last_[s];
      detach_from_segment(m);
      if (s + 1 < caps_.size()) {
        // Slide m across the boundary: positionally it stays put; it
        // becomes the MRU-most member of segment s+1.
        out.crossed.push_back(Crossing{s, m->key, m->size});
        m->segment = s + 1;
        ++counts_[s + 1];
        bytes_[s + 1] += m->size;
        if (counts_[s + 1] == 1) last_[s + 1] = m;
      } else {
        // Overflow past the final segment: evict from the global LRU
        // position.
        ULC_ENSURE(m == tail_, "final-segment LRU block must be the list tail");
        out.evicted.push_back(m->key);
        unlink(m);
        index_.erase(m->key);
        --size_;
        free_node(m);
      }
    }
  }
}

void SegmentedList::access(Key key, AccessResult& out, SizeUnits size) {
  out.hit = false;
  out.old_segment = kNoSegment;
  out.crossed.clear();
  out.evicted.clear();
  ULC_REQUIRE(size >= 1, "block size must be at least one unit");

  auto it = index_.find(key);
  if (it != index_.end()) {
    Node* n = it->second;
    const std::size_t old = n->segment;
    out.hit = true;
    out.old_segment = old;
    if (old == 0 && head_ == n) {
      return;  // already MRU; nothing moves
    }
    detach_from_segment(n);
    unlink(n);
    link_front(n);
    n->segment = 0;
    ++counts_[0];
    bytes_[0] += n->size;
    if (counts_[0] == 1) last_[0] = n;
    rebalance(0, out);
    return;
  }

  Node* n = alloc(key, size);
  link_front(n);
  ++counts_[0];
  bytes_[0] += size;
  if (counts_[0] == 1) last_[0] = n;
  index_.emplace(key, n);
  ++size_;
  rebalance(0, out);
}

bool SegmentedList::remove(Key key, AccessResult& out) {
  out.hit = false;
  out.old_segment = kNoSegment;
  out.crossed.clear();
  out.evicted.clear();

  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Node* n = it->second;
  out.old_segment = n->segment;
  detach_from_segment(n);
  unlink(n);
  index_.erase(it);
  --size_;
  free_node(n);
  return true;
}

std::size_t SegmentedList::segment_of(Key key) const {
  auto it = index_.find(key);
  return it == index_.end() ? kNoSegment : it->second->segment;
}

bool SegmentedList::check_consistency() const {
  std::size_t seen = 0;
  std::vector<std::size_t> counts(caps_.size(), 0);
  std::vector<std::uint64_t> bytes(caps_.size(), 0);
  std::size_t prev_segment = 0;
  const Node* prev = nullptr;
  for (const Node* n = head_; n; n = n->next) {
    if (n->prev != prev) return false;
    if (n->segment >= caps_.size()) return false;
    if (n->segment < prev_segment) return false;  // segments must be contiguous
    if (n->size < 1) return false;
    prev_segment = n->segment;
    ++counts[n->segment];
    bytes[n->segment] += n->size;
    auto it = index_.find(n->key);
    if (it == index_.end() || it->second != n) return false;
    ++seen;
    prev = n;
  }
  if (prev != tail_) return false;
  if (seen != size_ || index_.size() != size_) return false;
  for (std::size_t s = 0; s < caps_.size(); ++s) {
    if (counts[s] != counts_[s]) return false;
    if (bytes[s] != bytes_[s]) return false;
    if (bytes_[s] > caps_[s]) return false;  // the byte-capacity law
    if (counts_[s] > 0) {
      if (!last_[s] || last_[s]->segment != s) return false;
      if (last_[s]->next && last_[s]->next->segment == s) return false;
    }
  }
  return true;
}

}  // namespace ulc
