#include "order/order_statistic_list.h"

#include "util/ensure.h"

namespace ulc {

struct OrderStatisticList::Node {
  std::uint64_t value;
  std::uint64_t priority;
  std::size_t subtree_size;
  Node* left;
  Node* right;
  Node* parent;
};

namespace {

inline std::size_t size_of(const OrderStatisticList::Node* n) {
  return n ? n->subtree_size : 0;
}

inline void pull(OrderStatisticList::Node* n) {
  n->subtree_size = 1 + size_of(n->left) + size_of(n->right);
  if (n->left) n->left->parent = n;
  if (n->right) n->right->parent = n;
}

}  // namespace

OrderStatisticList::OrderStatisticList() : rng_(0x9d5c41u) {}

OrderStatisticList::~OrderStatisticList() {
  free_tree(root_);
  Node* n = free_list_;
  while (n) {
    Node* next = n->right;
    delete n;
    n = next;
  }
}

OrderStatisticList::Node* OrderStatisticList::alloc(std::uint64_t value) {
  Node* n;
  if (free_list_) {
    n = free_list_;
    free_list_ = n->right;
  } else {
    n = new Node();
  }
  n->value = value;
  n->priority = rng_.next_u64();
  n->subtree_size = 1;
  n->left = n->right = n->parent = nullptr;
  return n;
}

void OrderStatisticList::free_node(Node* n) {
  n->right = free_list_;
  free_list_ = n;
}

void OrderStatisticList::free_tree(Node* n) {
  if (!n) return;
  free_tree(n->left);
  free_tree(n->right);
  delete n;
}

OrderStatisticList::Node* OrderStatisticList::merge(Node* a, Node* b) {
  if (!a) return b;
  if (!b) return a;
  if (a->priority > b->priority) {
    a->right = merge(a->right, b);
    pull(a);
    return a;
  }
  b->left = merge(a, b->left);
  pull(b);
  return b;
}

void OrderStatisticList::split(Node* t, std::size_t left_count, Node*& a, Node*& b) {
  if (!t) {
    a = b = nullptr;
    return;
  }
  if (size_of(t->left) >= left_count) {
    split(t->left, left_count, a, t->left);
    b = t;
    pull(b);
    b->parent = nullptr;
    if (a) a->parent = nullptr;
  } else {
    split(t->right, left_count - size_of(t->left) - 1, t->right, b);
    a = t;
    pull(a);
    a->parent = nullptr;
    if (b) b->parent = nullptr;
  }
}

OrderStatisticList::Handle OrderStatisticList::insert_at(std::size_t pos,
                                                         std::uint64_t value) {
  ULC_REQUIRE(pos <= size_, "insert position out of range");
  Node* n = alloc(value);
  Node *a, *b;
  split(root_, pos, a, b);
  root_ = merge(merge(a, n), b);
  root_->parent = nullptr;
  ++size_;
  return n;
}

void OrderStatisticList::erase(Handle h) {
  ULC_REQUIRE(h != nullptr, "erase of null handle");
  const std::size_t pos = rank(h);
  Node *a, *b, *mid, *c;
  split(root_, pos, a, b);
  split(b, 1, mid, c);
  ULC_ENSURE(mid == h, "rank/handle mismatch in erase");
  root_ = merge(a, c);
  if (root_) root_->parent = nullptr;
  --size_;
  free_node(h);
}

std::size_t OrderStatisticList::rank(Handle h) const {
  ULC_REQUIRE(h != nullptr, "rank of null handle");
  std::size_t r = size_of(h->left);
  const Node* n = h;
  while (n->parent) {
    if (n->parent->right == n) r += size_of(n->parent->left) + 1;
    n = n->parent;
  }
  ULC_ENSURE(n == root_, "handle does not belong to this list");
  return r;
}

void OrderStatisticList::move(Handle h, std::size_t pos) {
  ULC_REQUIRE(h != nullptr, "move of null handle");
  ULC_REQUIRE(size_ > 0 && pos <= size_ - 1, "move position out of range");
  const std::size_t cur = rank(h);
  Node *a, *b, *mid, *c;
  split(root_, cur, a, b);
  split(b, 1, mid, c);
  ULC_ENSURE(mid == h, "rank/handle mismatch in move");
  Node* rest = merge(a, c);
  Node *x, *y;
  split(rest, pos, x, y);
  h->left = h->right = h->parent = nullptr;
  h->subtree_size = 1;
  root_ = merge(merge(x, h), y);
  root_->parent = nullptr;
}

OrderStatisticList::Handle OrderStatisticList::at(std::size_t pos) const {
  ULC_REQUIRE(pos < size_, "at position out of range");
  Node* n = root_;
  std::size_t p = pos;
  while (true) {
    const std::size_t ls = size_of(n->left);
    if (p < ls) {
      n = n->left;
    } else if (p == ls) {
      return n;
    } else {
      p -= ls + 1;
      n = n->right;
    }
  }
}

std::uint64_t OrderStatisticList::value(Handle h) const {
  ULC_REQUIRE(h != nullptr, "value of null handle");
  return h->value;
}

namespace {

bool check_node(const OrderStatisticList::Node* n, std::size_t& count) {
  if (!n) return true;
  if (n->subtree_size != 1 + size_of(n->left) + size_of(n->right)) return false;
  if (n->left && (n->left->parent != n || n->left->priority > n->priority)) return false;
  if (n->right && (n->right->parent != n || n->right->priority > n->priority)) return false;
  std::size_t lc = 0, rc = 0;
  if (!check_node(n->left, lc) || !check_node(n->right, rc)) return false;
  count = 1 + lc + rc;
  return count == n->subtree_size;
}

}  // namespace

bool OrderStatisticList::check_consistency() const {
  if (!root_) return size_ == 0;
  if (root_->parent != nullptr) return false;
  std::size_t count = 0;
  if (!check_node(root_, count)) return false;
  return count == size_;
}

}  // namespace ulc
