// An LRU list partitioned into k fixed-capacity contiguous segments with
// O(k) bookkeeping per access.
//
// This is the engine behind the unified-LRU (Wong & Wilkes DEMOTE) baseline:
// segment i models cache level L_{i+1}. When a block is inserted at the MRU
// position, one block slides across each full segment boundary above the
// position the accessed block came from — each such slide is exactly one
// demotion in uniLRU. The structure reports those boundary crossings so the
// caller can account demotion traffic without scanning.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ulc {

class SegmentedList {
 public:
  using Key = std::uint64_t;

  static constexpr std::size_t kNoSegment = static_cast<std::size_t>(-1);

  struct AccessResult {
    bool hit = false;
    // Segment the key was found in (kNoSegment on miss).
    std::size_t old_segment = kNoSegment;
    // crossed[b] = key that slid from segment b into segment b+1 as a result
    // of this access; boundaries not crossed are absent from the vector tail.
    // Entry b is meaningful for b < crossed_count.
    std::vector<Key> crossed;
    std::size_t crossed_count = 0;
    // Key evicted from the bottom of the last segment, if any.
    bool evicted = false;
    Key evicted_key = 0;
  };

  explicit SegmentedList(std::vector<std::size_t> segment_capacities);
  ~SegmentedList();

  SegmentedList(const SegmentedList&) = delete;
  SegmentedList& operator=(const SegmentedList&) = delete;

  // References `key`: moves it to the MRU position (inserting it if absent)
  // and updates segment boundaries. Results are written into `out` (whose
  // buffers are reused across calls to avoid per-access allocation).
  void access(Key key, AccessResult& out);

  // Removes `key` from the list if present (used by exclusive-caching
  // variants that drop a block on read). Returns true if it was present.
  bool remove(Key key, AccessResult& out);

  bool contains(Key key) const { return index_.find(key) != index_.end(); }
  // Segment of `key`, or kNoSegment if absent.
  std::size_t segment_of(Key key) const;

  std::size_t size() const { return size_; }
  std::size_t segment_count() const { return caps_.size(); }
  std::size_t segment_size(std::size_t s) const { return counts_[s]; }
  std::size_t segment_capacity(std::size_t s) const { return caps_[s]; }

  // O(n) structural validation for tests.
  bool check_consistency() const;

 private:
  struct Node {
    Key key;
    std::size_t segment;
    Node* prev;
    Node* next;
  };

  std::vector<std::size_t> caps_;
  std::vector<std::size_t> counts_;
  // last_[s]: LRU-most node of segment s; only meaningful when counts_[s] > 0.
  std::vector<Node*> last_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
  std::unordered_map<Key, Node*> index_;
  Node* free_list_ = nullptr;

  Node* alloc(Key key);
  void free_node(Node* n);
  void unlink(Node* n);
  void link_front(Node* n);
  // Shifts overflow down across boundaries starting at segment `from`,
  // recording crossings; evicts from the final segment on overflow.
  void rebalance(std::size_t from, AccessResult& out);
};

}  // namespace ulc
