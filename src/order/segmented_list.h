// An LRU list partitioned into k contiguous segments, each holding a byte
// budget in SizeUnits, with O(k + slides) bookkeeping per access.
//
// This is the engine behind the unified-LRU (Wong & Wilkes DEMOTE) baseline:
// segment i models cache level L_{i+1}. When a block is referenced at the
// MRU position, blocks slide across each over-budget segment boundary until
// every segment fits its budget again — each slide is exactly one demotion
// in uniLRU, and overflow past the final segment is an eviction. At unit
// block size exactly one block crosses each full boundary (the classic
// count-capacity behaviour); sized blocks can push several blocks across a
// boundary or off the bottom in a single access, so crossings and evictions
// are reported as vectors in the order they happened.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ulc {

class SegmentedList {
 public:
  using Key = std::uint64_t;
  using SizeUnits = std::uint32_t;

  static constexpr std::size_t kNoSegment = static_cast<std::size_t>(-1);

  struct Crossing {
    std::size_t from = 0;  // key slid from segment `from` into `from + 1`
    Key key = 0;
    SizeUnits size = 1;  // the slid block's footprint (byte-weighted stats)
  };

  struct AccessResult {
    bool hit = false;
    // Segment the key was found in (kNoSegment on miss).
    std::size_t old_segment = kNoSegment;
    // Boundary crossings in the order they happened: all segment-0 slides
    // first, then segment 1, ... (each entry is one uniLRU demotion).
    std::vector<Crossing> crossed;
    // Keys evicted off the bottom of the last segment, in eviction order.
    std::vector<Key> evicted;
  };

  explicit SegmentedList(std::vector<std::size_t> segment_capacities);
  ~SegmentedList();

  SegmentedList(const SegmentedList&) = delete;
  SegmentedList& operator=(const SegmentedList&) = delete;

  // References `key`: moves it to the MRU position (inserting it at `size`
  // units if absent; a resident key keeps its original size) and updates
  // segment boundaries. Results are written into `out` (whose buffers are
  // reused across calls to avoid per-access allocation). A key larger than
  // the total budget slides straight through and comes back in
  // `out.evicted`.
  void access(Key key, AccessResult& out, SizeUnits size = 1);

  // Removes `key` from the list if present (used by exclusive-caching
  // variants that drop a block on read). Returns true if it was present.
  bool remove(Key key, AccessResult& out);

  bool contains(Key key) const { return index_.find(key) != index_.end(); }
  // Segment of `key`, or kNoSegment if absent.
  std::size_t segment_of(Key key) const;

  std::size_t size() const { return size_; }
  std::size_t segment_count() const { return caps_.size(); }
  std::size_t segment_size(std::size_t s) const { return counts_[s]; }
  std::uint64_t segment_bytes(std::size_t s) const { return bytes_[s]; }
  std::size_t segment_capacity(std::size_t s) const { return caps_[s]; }

  // O(n) structural validation for tests.
  bool check_consistency() const;

 private:
  struct Node {
    Key key;
    SizeUnits size;
    std::size_t segment;
    Node* prev;
    Node* next;
  };

  std::vector<std::size_t> caps_;   // byte budgets, in SizeUnits
  std::vector<std::size_t> counts_;
  std::vector<std::uint64_t> bytes_;
  // last_[s]: LRU-most node of segment s; only meaningful when counts_[s] > 0.
  std::vector<Node*> last_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
  std::unordered_map<Key, Node*> index_;
  Node* free_list_ = nullptr;

  Node* alloc(Key key, SizeUnits size);
  void free_node(Node* n);
  void unlink(Node* n);
  void link_front(Node* n);
  void detach_from_segment(Node* n);
  // Shifts overflow down across boundaries starting at segment `from`,
  // recording crossings; evicts from the final segment on overflow.
  void rebalance(std::size_t from, AccessResult& out);
};

}  // namespace ulc
