#include "obs/trace_recorder.h"

#include <set>
#include <utility>

namespace ulc {
namespace obs {

bool TraceRecorder::has_room() {
  if (max_events_ != 0 && events_.size() >= max_events_) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceRecorder::span(const std::string& name, const char* category,
                         double start_ms, double dur_ms, int track,
                         std::uint64_t access_index, std::int64_t block) {
  if (!has_room()) return;
  events_.push_back(
      Event{'X', name, category, start_ms, dur_ms, track, access_index, block});
}

void TraceRecorder::instant(const std::string& name, const char* category,
                            double at_ms, int track, std::uint64_t access_index,
                            std::int64_t block) {
  if (!has_room()) return;
  events_.push_back(
      Event{'i', name, category, at_ms, 0.0, track, access_index, block});
}

void TraceRecorder::clear() {
  events_.clear();
  dropped_ = 0;
}

Json TraceRecorder::to_chrome_json() const {
  Json events = Json::array();

  // Name the thread lanes so the viewer shows "client" / "level k" instead
  // of bare tids. std::set gives a deterministic lane order.
  std::set<int> tracks;
  for (const Event& e : events_) tracks.insert(e.track);
  for (const auto& [track, name] : track_names_) {
    (void)name;
    tracks.insert(track);
  }
  for (int track : tracks) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", track);
    Json args = Json::object();
    const auto named = track_names_.find(track);
    if (named != track_names_.end()) {
      args.set("name", named->second);
    } else {
      args.set("name", track == kClientTrack
                           ? std::string("client")
                           : "level " + std::to_string(track - 1));
    }
    meta.set("args", std::move(args));
    events.push(std::move(meta));
  }

  for (const Event& e : events_) {
    Json j = Json::object();
    j.set("name", e.name);
    j.set("cat", e.category);
    j.set("ph", std::string(1, e.phase));
    // Chrome's ts/dur are microseconds; sim time is milliseconds.
    j.set("ts", e.ts_ms * 1000.0);
    if (e.phase == 'X') j.set("dur", e.dur_ms * 1000.0);
    if (e.phase == 'i') j.set("s", "t");  // thread-scoped instant
    j.set("pid", 0);
    j.set("tid", e.track);
    Json args = Json::object();
    args.set("access", e.access_index);
    if (e.block >= 0) args.set("block", e.block);
    j.set("args", std::move(args));
    events.push(std::move(j));
  }

  Json doc = Json::object();
  doc.set("displayTimeUnit", "ms");
  Json other = Json::object();
  other.set("generator", "ulc");
  other.set("dropped_events", dropped_);
  doc.set("otherData", std::move(other));
  doc.set("traceEvents", std::move(events));
  return doc;
}

}  // namespace obs
}  // namespace ulc
