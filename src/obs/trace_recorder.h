// Protocol event timeline with Chrome trace_event JSON export.
//
// Records complete spans (ph "X": a reference being served, a block transfer)
// and instant events (ph "i": demote arrivals, breaker trips, phase
// transitions, crash wipes) keyed by simulated milliseconds and access index.
// Tracks map to Chrome thread lanes: track 0 is the client, track 1+k is
// cache level k. Export follows the trace_event format understood by
// chrome://tracing and Perfetto (ts/dur in microseconds).
//
// Determinism: events are stored in recording order and serialized verbatim;
// nothing here reads the wall clock. A capacity limit (max_events) makes long
// runs safe to trace — overflowing events are counted, not recorded, and the
// drop count is reported in the export's otherData.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace ulc {
namespace obs {

class TraceRecorder {
 public:
  // max_events == 0 means unbounded.
  explicit TraceRecorder(std::size_t max_events = 0) : max_events_(max_events) {}

  static constexpr int kClientTrack = 0;
  static int level_track(std::size_t level) { return static_cast<int>(level) + 1; }

  // Optional display name for a track lane; unnamed tracks fall back to
  // "client" / "level k" per the helpers above.
  void name_track(int track, std::string name) {
    track_names_[track] = std::move(name);
  }

  // Complete span starting at start_ms lasting dur_ms. block < 0 omits the
  // block arg.
  void span(const std::string& name, const char* category, double start_ms,
            double dur_ms, int track, std::uint64_t access_index,
            std::int64_t block = -1);

  // Instant event at at_ms.
  void instant(const std::string& name, const char* category, double at_ms,
               int track, std::uint64_t access_index, std::int64_t block = -1);

  std::size_t size() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  bool empty() const { return events_.empty(); }
  void clear();

  // {"displayTimeUnit": "ms", "otherData": {...}, "traceEvents": [...]} —
  // thread_name metadata first, then events in recording order.
  Json to_chrome_json() const;

 private:
  struct Event {
    char phase;  // 'X' or 'i'
    std::string name;
    const char* category;
    double ts_ms;
    double dur_ms;  // spans only
    int track;
    std::uint64_t access_index;
    std::int64_t block;  // -1 = absent
  };

  bool has_room();

  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace ulc
