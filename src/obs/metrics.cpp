#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/ensure.h"

namespace ulc {
namespace obs {

namespace {

// Dedicated bucket for samples <= 0 (zero-cost local hits).
constexpr int kZeroBucket = std::numeric_limits<int>::min();

}  // namespace

int LatencyHistogram::bucket_of(double ms) {
  if (!(ms > 0.0)) return kZeroBucket;
  int exp2 = 0;
  const double frac = std::frexp(ms, &exp2);  // ms = frac * 2^exp2, frac in [0.5, 1)
  // (frac - 0.5) and the multiply by 2*kSubBuckets (a power of two) are both
  // exact, so the truncation below is platform-independent.
  int sub = static_cast<int>((frac - 0.5) * (2.0 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;
  if (sub < 0) sub = 0;
  return exp2 * kSubBuckets + sub;
}

double LatencyHistogram::bucket_upper(int index) {
  if (index == kZeroBucket) return 0.0;
  // Floor division so negative indices (sub-millisecond octaves) map back to
  // the right octave.
  int exp2 = index / kSubBuckets;
  int sub = index % kSubBuckets;
  if (sub < 0) {
    sub += kSubBuckets;
    --exp2;
  }
  const double frac =
      0.5 + 0.5 * static_cast<double>(sub + 1) / static_cast<double>(kSubBuckets);
  return std::ldexp(frac, exp2);
}

void LatencyHistogram::record(double ms) {
  ++buckets_[bucket_of(ms)];
  moments_.add(ms);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
  moments_.merge(other.moments_);
}

void LatencyHistogram::clear() {
  buckets_.clear();
  moments_ = OnlineStats();
}

double LatencyHistogram::percentile(double p) const {
  ULC_REQUIRE(!empty(), "percentile of empty histogram");
  ULC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0, 100]");
  // Nearest-rank leaves p=0 undefined; return the exact minimum (the bucket
  // upper edge would overshoot it by up to one bucket width).
  if (p == 0.0) return moments_.min();  // ulc-lint: allow(float-eq)
  const std::uint64_t n = count();
  // Nearest-rank: smallest rank r (1-based) with r >= p/100 * n.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t seen = 0;
  for (const auto& [index, cnt] : buckets_) {
    seen += cnt;
    if (seen >= rank) {
      const double v = bucket_upper(index);
      return std::min(std::max(v, moments_.min()), moments_.max());
    }
  }
  return moments_.max();  // unreachable: bucket counts sum to n
}

Json LatencyHistogram::to_json() const {
  Json j = Json::object();
  j.set("count", count());
  if (empty()) {
    j.set("mean", nullptr);
    j.set("min", nullptr);
    j.set("max", nullptr);
    j.set("p50", nullptr);
    j.set("p95", nullptr);
    j.set("p99", nullptr);
    return j;
  }
  j.set("mean", mean());
  j.set("min", min());
  j.set("max", max());
  j.set("p50", percentile(50.0));
  j.set("p95", percentile(95.0));
  j.set("p99", percentile(99.0));
  return j;
}

void MetricsRegistry::add_counter(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

const LatencyHistogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counters_[name] += v;
  for (const auto& [name, v] : other.gauges_) gauges_[name] = v;
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
}

Json MetricsRegistry::to_json() const {
  Json j = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [name, v] : counters_) c.set(name, v);
    j.set("counters", std::move(c));
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [name, v] : gauges_) g.set(name, v);
    j.set("gauges", std::move(g));
  }
  if (!histograms_.empty()) {
    Json h = Json::object();
    for (const auto& [name, hist] : histograms_) h.set(name, hist.to_json());
    j.set("histograms", std::move(h));
  }
  return j;
}

Json stats_to_json(const OnlineStats& s) {
  Json j = Json::object();
  j.set("count", s.count());
  if (s.empty()) {
    j.set("mean", nullptr);
    j.set("stddev", nullptr);
    j.set("min", nullptr);
    j.set("max", nullptr);
    return j;
  }
  j.set("mean", s.mean());
  j.set("stddev", s.stddev());
  j.set("min", s.min());
  j.set("max", s.max());
  return j;
}

}  // namespace obs
}  // namespace ulc
