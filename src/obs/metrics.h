// Deterministic observability primitives: named counters/gauges, log-bucketed
// latency histograms with exact-rank percentiles, and an RAII scope timer.
//
// Everything here is keyed to *simulated* time or access index — never the
// wall clock — so any instrumented run replays bit-for-bit. Histograms and
// registries merge associatively; the engine merges per-cell instances in
// fixed spec order, which is what keeps `--threads=1` and `--threads=8`
// output byte-identical. Containers are std::map (ordered) on purpose:
// iteration order is part of the determinism contract.
//
// Compile-time switch: building with -DULC_ENABLE_OBS=0 turns obs::enabled()
// into a constexpr false, so every `obs::gate(ptr)` call site collapses to a
// null pointer and the instrumentation branches compile out entirely. At
// runtime the switch is simply "pass nullptr" — both are exercised by
// ops_microbench.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.h"
#include "util/stats.h"

#ifndef ULC_ENABLE_OBS
#define ULC_ENABLE_OBS 1
#endif

namespace ulc {
namespace obs {

constexpr bool enabled() { return ULC_ENABLE_OBS != 0; }

// Collapses instrumentation pointers to nullptr when observability is
// compiled out, letting the optimizer delete the recording paths.
template <class T>
constexpr T* gate(T* p) {
  return enabled() ? p : nullptr;
}

// Log-bucketed latency histogram (milliseconds).
//
// Buckets are log-linear: each power-of-two octave is split into kSubBuckets
// equal slices, so the relative width of any bucket is at most 1/kSubBuckets
// (~3.1%). Bucket selection uses frexp/ldexp and power-of-two arithmetic
// only, so it is exact IEEE-754 — identical on every platform. Percentiles
// are nearest-rank: the rank is exact; the returned value is the upper edge
// of the bucket holding that rank, clamped to the exact observed [min, max]
// (so p0/p100 are exact and every quantile is within one bucket width of the
// true order statistic). Non-positive samples (e.g. 0 ms local hits) land in
// a dedicated zero bucket.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 32;

  void record(double ms);
  // Element-wise sum; merging is associative and commutative, but callers
  // must still merge in a fixed order when exact moment (mean/stddev)
  // reproducibility across merge shapes matters.
  void merge(const LatencyHistogram& other);
  void clear();

  bool empty() const { return moments_.empty(); }
  std::uint64_t count() const { return moments_.count(); }
  double sum() const { return moments_.sum(); }
  double mean() const { return moments_.mean(); }
  // Exact observed extrema; both require a non-empty histogram.
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }

  // Nearest-rank percentile, p in [0, 100]; requires a non-empty histogram.
  double percentile(double p) const;

  // {"count", "mean", "min", "max", "p50", "p95", "p99"}; all value fields
  // are null when the histogram is empty.
  Json to_json() const;

 private:
  static int bucket_of(double ms);
  static double bucket_upper(int index);

  std::map<int, std::uint64_t> buckets_;
  OnlineStats moments_;
};

// Named counters, gauges and latency histograms. Lookup is by string name;
// std::map keeps to_json() and merge() deterministic. One registry per
// experiment cell / simulator run; merge in fixed order for aggregates.
class MetricsRegistry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta = 1);
  // 0 when the counter has never been touched.
  std::uint64_t counter(const std::string& name) const;

  void set_gauge(const std::string& name, double value);

  // Creates the histogram on first use.
  LatencyHistogram& histogram(const std::string& name);
  // nullptr when absent.
  const LatencyHistogram* find_histogram(const std::string& name) const;

  // Counters add, gauges take `other`'s value (last writer wins), histograms
  // merge element-wise.
  void merge(const MetricsRegistry& other);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}} with
  // keys in lexicographic order; empty sections are omitted.
  Json to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
};

// RAII span timer over a *simulated* clock. Reads `*sim_clock_ms` at
// construction and destruction and records the difference; a null histogram
// or clock makes it a no-op, so call sites need no `if (obs)` guards.
class ScopeTimer {
 public:
  ScopeTimer(LatencyHistogram* hist, const double* sim_clock_ms)
      : hist_(hist),
        clock_(sim_clock_ms),
        start_(hist && sim_clock_ms ? *sim_clock_ms : 0.0) {}
  ~ScopeTimer() {
    if (hist_ && clock_) hist_->record(*clock_ - start_);
  }

  ScopeTimer(const ScopeTimer&) = delete;
  ScopeTimer& operator=(const ScopeTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  const double* clock_;
  double start_;
};

// {"count", "mean", "stddev", "min", "max"} for a Welford accumulator; the
// value fields are null when no samples were recorded (the empty-stats fix:
// a zero-request phase must not report min=0).
Json stats_to_json(const OnlineStats& s);

}  // namespace obs
}  // namespace ulc
