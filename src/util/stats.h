// Small statistics helpers shared by the simulator and the benches.
#pragma once

#include <cstdint>
#include <vector>

namespace ulc {

// Streaming mean/variance/min/max (Welford).
//
// Emptiness is explicit: callers must check empty() (or count()) before
// asking for extrema. min()/max() abort on an empty accumulator instead of
// silently returning 0.0 — a zero-request phase reporting min=0 used to
// poison JSON aggregates; JSON writers should emit null for empty stats
// (see obs::stats_to_json). mean()/sum() of an empty accumulator are 0.0 by
// convention (an empty sum), which is safe for additive aggregation.
class OnlineStats {
 public:
  void add(double x);
  // Parallel Welford combine (Chan et al.); deterministic for a fixed merge
  // order — merge per-shard stats in a fixed order when byte-identical
  // output across thread counts matters.
  void merge(const OnlineStats& other);

  bool empty() const { return count_ == 0; }
  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  // Population variance (M2/n), not the sample estimator (M2/(n-1)): these
  // are exhaustive statistics over every simulated reference, not a sample
  // from a larger population. 0.0 when empty.
  double variance() const;
  double stddev() const;
  // Require a non-empty accumulator.
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bucket counting histogram over [0, buckets); out-of-range values are
// clamped to the last bucket. Used for segment/stack-depth distributions.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets);

  void add(std::size_t bucket, std::uint64_t weight = 1);
  std::uint64_t bucket(std::size_t i) const;
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

  // Fraction of all samples in bucket i (0 if empty histogram).
  double ratio(std::size_t i) const;
  // Fraction of all samples in buckets [0, i].
  double cumulative_ratio(std::size_t i) const;

  void clear();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ulc
