// Small statistics helpers shared by the simulator and the benches.
#pragma once

#include <cstdint>
#include <vector>

namespace ulc {

// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Fixed-bucket counting histogram over [0, buckets); out-of-range values are
// clamped to the last bucket. Used for segment/stack-depth distributions.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets);

  void add(std::size_t bucket, std::uint64_t weight = 1);
  std::uint64_t bucket(std::size_t i) const;
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t total() const { return total_; }

  // Fraction of all samples in bucket i (0 if empty histogram).
  double ratio(std::size_t i) const;
  // Fraction of all samples in buckets [0, i].
  double cumulative_ratio(std::size_t i) const;

  void clear();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ulc
