// Byte-budget capacity accounting shared by every cache core.
//
// Historically each level held `capacity` blocks and every structure
// compared a count against it. With sized blocks the capacity value is
// reinterpreted as a budget in SizeUnits and occupancy is the sum of
// resident block sizes; "full" becomes "the incoming block does not fit"
// and eviction loops run until it does. When every block is one unit the
// arithmetic below reduces exactly to the old count comparisons, which is
// what the unit-size golden-parity tests pin down:
//
//   old: size() >= capacity   (evict one, then insert)
//   new: used + incoming > capacity   (evict until it fits)
//
// are victim-for-victim identical at size 1, because each eviction frees
// exactly the one unit the insert needs.
//
// The `ulc_lint` count-vs-capacity rule bans raw `.size() <= cap`-style
// comparisons in src/replacement and src/hierarchy so occupancy accounting
// funnels through this helper (ghost/metadata lists, which hold identities
// rather than data, stay count-bounded under allow markers).
// Sizes are taken as plain std::uint64_t (SizeUnits converts up losslessly)
// so this header stays in util, below the trace layer, per the
// include-layering DAG in tools/lint/layers.txt.
#pragma once

#include <cstdint>

#include "util/ensure.h"

namespace ulc {

class ByteBudget {
 public:
  ByteBudget() = default;
  explicit ByteBudget(std::uint64_t capacity_units) : capacity_(capacity_units) {}

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_units() const {
    return used_ >= capacity_ ? 0 : capacity_ - used_;
  }

  // True when a block of `size` units can be admitted without eviction.
  bool fits(std::uint64_t size) const { return used_ + size <= capacity_; }
  // True when admitting `size` units requires evictions first. The caller's
  // eviction loop is `while (budget.needs_eviction(size) && <has victims>)`.
  bool needs_eviction(std::uint64_t size) const {
    return used_ + size > capacity_;
  }
  // True when occupancy exceeds the budget (a state only transiently legal,
  // e.g. mid-cascade in uniLRU segments).
  bool overflowed() const { return used_ > capacity_; }
  // A single block larger than the whole budget can never be cached here.
  bool can_ever_fit(std::uint64_t size) const { return size <= capacity_; }

  void charge(std::uint64_t size) { used_ += size; }
  void release(std::uint64_t size) {
    ULC_ENSURE(used_ >= size, "byte budget released more than it charged");
    used_ -= size;
  }
  void reset() { used_ = 0; }

 private:
  std::uint64_t capacity_ = 0;
  std::uint64_t used_ = 0;
};

}  // namespace ulc
