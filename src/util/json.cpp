#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/ensure.h"

namespace ulc {

Json& Json::set(const std::string& key, Json value) {
  ULC_REQUIRE(kind_ == Kind::kObject, "Json::set on a non-object");
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  ULC_REQUIRE(kind_ == Kind::kArray, "Json::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Json::format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  if (v == 0.0) return "0";  // fold -0 for determinism  // ulc-lint: allow(float-eq)
  // Integral values inside the exactly-representable range print as integers.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest %.*g form that round-trips.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  char buf[32];
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
      out += buf;
      break;
    case Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(uint_));
      out += buf;
      break;
    case Kind::kDouble:
      out += format_double(double_);
      break;
    case Kind::kString:
      out += escape(string_);
      break;
    case Kind::kArray:
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out.push_back(',');
        newline_pad(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    case Kind::kObject:
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i) out.push_back(',');
        newline_pad(depth + 1);
        out += escape(members_[i].first);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool save_json(const Json& doc, const std::string& path, int indent,
               std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string text = doc.dump(indent);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (!ok && error) *error = "short write to " + path;
  return ok;
}

}  // namespace ulc
