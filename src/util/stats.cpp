#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace ulc {

void OnlineStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  ULC_REQUIRE(count_ > 0, "min() of empty OnlineStats (check empty() first)");
  return min_;
}

double OnlineStats::max() const {
  ULC_REQUIRE(count_ > 0, "max() of empty OnlineStats (check empty() first)");
  return max_;
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0) {
  ULC_REQUIRE(buckets > 0, "Histogram needs at least one bucket");
}

void Histogram::add(std::size_t bucket, std::uint64_t weight) {
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  counts_[bucket] += weight;
  total_ += weight;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  ULC_REQUIRE(i < counts_.size(), "Histogram bucket out of range");
  return counts_[i];
}

double Histogram::ratio(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bucket(i)) / static_cast<double>(total_);
}

double Histogram::cumulative_ratio(std::size_t i) const {
  if (total_ == 0) return 0.0;
  ULC_REQUIRE(i < counts_.size(), "Histogram bucket out of range");
  std::uint64_t acc = 0;
  for (std::size_t k = 0; k <= i; ++k) acc += counts_[k];
  return static_cast<double>(acc) / static_cast<double>(total_);
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

}  // namespace ulc
