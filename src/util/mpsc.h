// Bounded multi-producer single-consumer queue for the serving runtime.
//
// The sharded serving path routes demotions and directory updates from the
// shard client engines to the gLRU directory server over these queues; the
// bound is the backpressure mechanism (a client that outruns the server
// blocks in push() instead of growing an unbounded backlog — the same
// contract OrangeFS's ucache uses for its cross-process message queues).
//
// Ordering contract: the queue is FIFO over the *enqueue* order, which a
// single internal mutex makes a total order. With one producer that order is
// the producer's program order, so a per-shard consumer applies a
// deterministic sequence; with several producers the order is whatever
// interleaving the mutex admits (per-producer subsequences stay in order).
//
// The consumer drains in batches (pop_wait) to amortize the lock. close()
// wakes everyone: producers see push() fail, the consumer drains what is
// left and then gets 0.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "util/ensure.h"

namespace ulc {

struct MpscStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t rejected = 0;        // try_push on a full queue / push after close
  std::uint64_t producer_waits = 0;  // pushes that had to block on a full queue
  std::uint64_t max_depth = 0;       // high-water mark of queued items
};

template <typename T>
class BoundedMpsc {
 public:
  explicit BoundedMpsc(std::size_t capacity) : capacity_(capacity) {
    ULC_REQUIRE(capacity >= 1, "queue capacity must be positive");
  }

  BoundedMpsc(const BoundedMpsc&) = delete;
  BoundedMpsc& operator=(const BoundedMpsc&) = delete;

  // Blocks while the queue is full (backpressure). Returns false only when
  // the queue has been closed, in which case the item is dropped.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(lock_);
    if (items_.size() >= capacity_ && !closed_) {
      ++stats_.producer_waits;
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) {
      ++stats_.rejected;
      return false;
    }
    enqueue_locked(std::move(item));
    return true;
  }

  // Non-blocking variant: false when full or closed (item dropped).
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(lock_);
    if (closed_ || items_.size() >= capacity_) {
      ++stats_.rejected;
      return false;
    }
    enqueue_locked(std::move(item));
    return true;
  }

  // Consumer side: clears `out`, then blocks until at least one item is
  // available (moving every queued item into `out`) or the queue is closed
  // and empty. Returns the number of items delivered; 0 means "closed and
  // fully drained" — the consumer's exit signal.
  std::size_t pop_wait(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(lock_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    while (!items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    stats_.dequeued += out.size();
    if (!out.empty()) not_full_.notify_all();
    return out.size();
  }

  // After close() every push fails and pop_wait drains to 0.
  void close() {
    std::lock_guard<std::mutex> lock(lock_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(lock_);
    return closed_;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(lock_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

  MpscStats stats() const {
    std::lock_guard<std::mutex> lock(lock_);
    return stats_;
  }

 private:
  void enqueue_locked(T item) {
    items_.push_back(std::move(item));
    ++stats_.enqueued;
    if (items_.size() > stats_.max_depth) stats_.max_depth = items_.size();
    not_empty_.notify_one();
  }

  const std::size_t capacity_;
  mutable std::mutex lock_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  MpscStats stats_;
};

}  // namespace ulc
