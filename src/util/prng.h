// Deterministic pseudo-random number generation for workload synthesis.
//
// We do not use std::mt19937 / std::*_distribution because the exact output
// of the standard distributions is implementation-defined; trace synthesis
// must be bit-reproducible so that EXPERIMENTS.md numbers can be regenerated
// anywhere. Xoshiro256** seeded via SplitMix64 is the standard small, fast,
// well-tested choice.
#pragma once

#include <cstdint>
#include <vector>

namespace ulc {

// SplitMix64: used to expand a single 64-bit seed into a full generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: the repository-wide PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform integer in [0, bound). bound must be > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p);

 private:
  std::uint64_t s_[4];
};

// Samples ranks 0..n-1 with P(rank = i) proportional to 1/(i+1)^theta.
// theta = 1 reproduces the paper's zipf trace ("probability of a reference to
// the i-th block is proportional to 1/i"). Sampling is inverse-CDF over a
// precomputed cumulative table: O(log n) per sample, exact and deterministic.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  // Returns a rank in [0, n). Rank 0 is the most popular item.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i); cdf_[n-1] == 1.0
};

}  // namespace ulc
