// Lightweight invariant checking for internal data-structure consistency.
//
// ULC_ENSURE is compiled in when ULC_ENABLE_CHECKS is defined (the default
// for this repository, including RelWithDebInfo) and aborts with a message on
// violation. It guards *internal* invariants (yardstick ordering, capacity
// accounting, list consistency); public-API misuse is reported the same way
// since this library has no error states a caller could meaningfully handle.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ulc {

[[noreturn]] inline void ensure_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "ULC_ENSURE failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace ulc

#if defined(ULC_ENABLE_CHECKS)
#define ULC_ENSURE(cond, msg)                                  \
  do {                                                         \
    if (!(cond)) ::ulc::ensure_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
#else
// The disabled form must still "use" its operands: sizeof keeps variables
// referenced (no -Wunused warnings under -DULC_ENABLE_CHECKS=OFF) without
// evaluating the condition or the message.
#define ULC_ENSURE(cond, msg)     \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
    (void)sizeof(msg);            \
  } while (0)
#endif

// Always-on variant for checks that guard against memory corruption or
// caller contract violations that would otherwise cause undefined behaviour.
#define ULC_REQUIRE(cond, msg)                                 \
  do {                                                         \
    if (!(cond)) ::ulc::ensure_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
