// Plain-text table and CSV emission for the benchmark harnesses.
//
// Every bench binary prints the rows/series the paper's figure or table
// reports; TablePrinter keeps that output aligned and diff-friendly, and the
// optional CSV sink makes the data easy to plot.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ulc {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  // Render to an aligned plain-text table.
  std::string to_text() const;
  // Render to CSV (headers + rows).
  std::string to_csv() const;

  void print(std::FILE* out = stdout) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style float formatting helpers used by the bench harnesses.
std::string fmt_double(double v, int precision = 3);
std::string fmt_percent(double fraction, int precision = 1);  // 0.125 -> "12.5%"

}  // namespace ulc
