// Minimal dependency-free JSON document builder for the structured-results
// layer of the experiment engine.
//
// Construction mirrors the document: Json::object() / Json::array() make
// containers, set()/push() fill them (object keys keep insertion order so
// output is deterministic), and dump() serializes. Doubles are printed with
// the shortest representation that round-trips through strtod, so equal
// values always serialize to equal bytes — the property the engine's
// "--threads=1 vs --threads=8 byte-identical output" guarantee rests on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ulc {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(std::nullptr_t) : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }
  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Object member (requires is_object()); replaces an existing key in place.
  Json& set(const std::string& key, Json value);
  // Array element (requires is_array()).
  Json& push(Json value);

  std::size_t size() const;

  // Serialization. indent < 0 emits one line; indent >= 0 pretty-prints with
  // that many spaces per nesting level. The output always ends without a
  // trailing newline; callers append one when writing files.
  std::string dump(int indent = -1) const;

  // Escapes `s` as a JSON string literal (with quotes).
  static std::string escape(const std::string& s);
  // Shortest decimal form of `v` that strtod parses back to exactly `v`.
  static std::string format_double(double v);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

// Writes `doc.dump(indent)` plus a final newline to `path`. Returns false and
// fills `error` (when non-null) on IO failure.
bool save_json(const Json& doc, const std::string& path, int indent = 2,
               std::string* error = nullptr);

}  // namespace ulc
