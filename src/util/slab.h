// Paged slab arena handing out 32-bit node handles, plus the intrusive
// doubly-linked list that runs over it.
//
// All the recency structures of this repository (uniLRUstack, gLRU, the
// single-level policies' LRU/FIFO/ghost lists) are linked lists of tiny
// nodes indexed by block id. Allocating those nodes individually scatters
// them across the heap and costs an allocator round-trip per block; the
// slab instead carves fixed-size pages (default 1024 nodes) and recycles
// freed slots through a LIFO free stack, so
//   * alloc/free are O(1) with no heap traffic in steady state,
//   * node handles are 32-bit (halving link storage vs. Node*),
//   * pages never move once carved — a T* stays valid for the slot's whole
//     live range, across any number of later alloc() calls (no vector-style
//     reallocation), which is what lets UniLruStack keep its Node*-shaped
//     public API on top of handle storage.
//
// ABA / stale-handle policy: handles ARE recycled (LIFO), and the slab does
// not tag them with generations. This is a documented non-requirement: every
// owner in this repository stores a node's handle in exactly one index entry
// plus the intrusive links, and all of those are removed in the same
// operation that frees the slot, so no stale handle survives a free. Code
// that wanted to cache handles across mutations would need its own
// generation scheme (see slab_test for the recycling contract).
//
// Determinism: alloc order depends only on the alloc/free history (LIFO
// reuse, ascending carve order), never on addresses, so simulator output
// cannot pick up allocator noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/ensure.h"
#include "util/simd.h"

namespace ulc {

using SlabHandle = std::uint32_t;
inline constexpr SlabHandle kNullHandle = 0xFFFFFFFFu;

template <typename T>
class Slab {
 public:
  // `page_size` must be a power of two. `max_slots` bounds the handle space;
  // the default leaves kNullHandle as the only unusable value. Smaller
  // bounds exist for tests (arena-exhaustion death test) and for callers
  // that want a hard metadata budget.
  explicit Slab(std::uint32_t page_size = 1024,
                std::uint64_t max_slots = kNullHandle)
      : page_size_(page_size), max_slots_(max_slots) {
    ULC_REQUIRE(page_size >= 2 && (page_size & (page_size - 1)) == 0,
                "slab page size must be a power of two >= 2");
    ULC_REQUIRE(max_slots_ <= kNullHandle, "slab handle space is 32-bit");
    std::uint32_t shift = 0;
    while ((1u << shift) != page_size_) ++shift;
    page_shift_ = shift;
  }

  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  // Hands out a slot. Reuses the most recently freed slot first; otherwise
  // carves the next page. The returned slot holds whatever the previous
  // occupant left (on a fresh page: T{}, or indeterminate bytes when T is
  // trivially default-constructible) — callers assign every field.
  SlabHandle alloc() {
    if (free_.empty()) carve_page();
    const SlabHandle h = free_.back();
    free_.pop_back();
    ++page_live_[h >> page_shift_];
    ++live_;
    ++stats_.allocs;
    return h;
  }

  void free(SlabHandle h) {
    ULC_REQUIRE(h < slot_count(), "slab free of an out-of-range handle");
    ULC_ENSURE(page_live_[h >> page_shift_] > 0,
               "slab free underflows its page's live count");
    --page_live_[h >> page_shift_];
    --live_;
    ++stats_.frees;
    free_.push_back(h);
  }

  T& operator[](SlabHandle h) {
    ULC_ENSURE(h < slot_count(), "slab access with an out-of-range handle");
    return pages_[h >> page_shift_][h & (page_size_ - 1)];
  }
  const T& operator[](SlabHandle h) const {
    ULC_ENSURE(h < slot_count(), "slab access with an out-of-range handle");
    return pages_[h >> page_shift_][h & (page_size_ - 1)];
  }
  T* get(SlabHandle h) { return &(*this)[h]; }
  const T* get(SlabHandle h) const { return &(*this)[h]; }

  // Pulls the slot the next alloc() will hand out toward the cache in
  // exclusive state (callers assign every field of a fresh slot). No-op when
  // the next alloc would carve. Non-mutating; part of the prefetch pipeline.
  void prefetch_next_alloc() const {
    if (!free_.empty()) {
      const SlabHandle h = free_.back();
      prefetch_write(&pages_[h >> page_shift_][h & (page_size_ - 1)]);
    }
  }

  std::size_t live() const { return live_; }
  // Cached (updated on carve/release): this is the bound every handle deref
  // checks, so it must not re-derive pages_.size() each time.
  std::size_t slot_count() const { return slot_count_; }
  std::size_t page_count() const { return pages_.size(); }
  std::uint32_t page_size() const { return page_size_; }

  // Carves pages until at least `n` slots exist (no-op if already there).
  // The largest reservation is also a floor for release_free_pages: pages a
  // caller pre-carved to avoid mid-run carving are never handed back, so a
  // reserve-then-fill warm-up cannot be undone by an early release.
  void reserve(std::size_t n) {
    if (n > reserved_floor_) reserved_floor_ = n;
    while (slot_count() < n) carve_page();
  }

  // Releases trailing pages whose slots are all free, but only when the
  // arena is mostly empty: live() must be under a quarter of the carved
  // slots AND at least two whole pages must be reclaimable. The hysteresis
  // band means a workload oscillating around a page boundary never thrashes
  // carve/release cycles. Interior free pages are kept (handles are offsets,
  // pages cannot be renumbered). Returns the number of pages released.
  std::size_t release_free_pages() {
    if (live_ * 4 >= slot_count()) return 0;
    const std::size_t keep_pages =
        (reserved_floor_ + page_size_ - 1) >> page_shift_;
    std::size_t releasable = 0;
    while (pages_.size() - releasable > keep_pages &&
           page_live_[pages_.size() - 1 - releasable] == 0)
      ++releasable;
    if (releasable < 2) return 0;
    for (std::size_t i = 0; i < releasable; ++i) {
      pages_.pop_back();
      page_live_.pop_back();
    }
    slot_count_ -= releasable << page_shift_;
    const SlabHandle limit = static_cast<SlabHandle>(slot_count());
    std::size_t kept = 0;
    for (const SlabHandle h : free_) {
      if (h < limit) free_[kept++] = h;
    }
    free_.resize(kept);
    stats_.pages_released += releasable;
    return releasable;
  }

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t pages_carved = 0;
    std::uint64_t pages_released = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void carve_page() {
    // Checked here, not at class scope: nested node structs with default
    // member initializers only become default-constructible once their
    // outermost enclosing class is complete.
    static_assert(std::is_default_constructible_v<T>,
                  "slab slots are default-constructed per page");
    // Always-on (ULC_REQUIRE): past this point handles would alias and
    // corrupt links, so the guard must survive ULC_ENABLE_CHECKS=OFF builds.
    ULC_REQUIRE(slot_count() + page_size_ <= max_slots_,
                "slab arena exhausted its 32-bit handle space budget");
    const SlabHandle base = static_cast<SlabHandle>(slot_count());
    // Trivial node types skip the page memset — alloc()'s contract already
    // obliges callers to assign every field, and on hot paths the zeroing
    // is pure overwritten-before-read work. Types with default member
    // initializers still get them (for_overwrite default-initializes).
    pages_.push_back(std::make_unique_for_overwrite<T[]>(page_size_));
    page_live_.push_back(0);
    slot_count_ += page_size_;
    // Reverse order so alloc() hands out ascending handles within a page.
    free_.reserve(free_.size() + page_size_);
    for (std::uint32_t i = page_size_; i-- > 0;)
      free_.push_back(base + i);
    ++stats_.pages_carved;
  }

  std::uint32_t page_size_;
  std::uint32_t page_shift_ = 0;
  std::uint64_t max_slots_;
  std::size_t reserved_floor_ = 0;  // largest reserve(); release keeps it
  std::size_t slot_count_ = 0;      // == pages_.size() << page_shift_
  std::vector<std::unique_ptr<T[]>> pages_;
  std::vector<std::uint32_t> page_live_;  // live slots per page
  std::vector<SlabHandle> free_;          // LIFO free stack
  std::size_t live_ = 0;
  Stats stats_;
};

// Intrusive doubly-linked list over a Slab. `T` exposes two SlabHandle link
// members; which ones via the member-pointer parameters, so one node type
// can sit on several lists at once (LIRS stack S + queue Q). The list never
// allocates: push/erase relink handles the owner already holds.
template <typename T, SlabHandle T::* PrevM = &T::prev,
          SlabHandle T::* NextM = &T::next>
class SlabList {
 public:
  explicit SlabList(Slab<T>* slab) : slab_(slab) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  SlabHandle front() const { return head_; }
  SlabHandle back() const { return tail_; }
  SlabHandle next(SlabHandle h) const { return (*slab_)[h].*NextM; }
  SlabHandle prev(SlabHandle h) const { return (*slab_)[h].*PrevM; }

  void push_front(SlabHandle h) {
    T& n = (*slab_)[h];
    n.*PrevM = kNullHandle;
    n.*NextM = head_;
    if (head_ != kNullHandle) (*slab_)[head_].*PrevM = h;
    head_ = h;
    if (tail_ == kNullHandle) tail_ = h;
    ++size_;
  }

  void push_back(SlabHandle h) {
    T& n = (*slab_)[h];
    n.*NextM = kNullHandle;
    n.*PrevM = tail_;
    if (tail_ != kNullHandle) (*slab_)[tail_].*NextM = h;
    tail_ = h;
    if (head_ == kNullHandle) head_ = h;
    ++size_;
  }

  void erase(SlabHandle h) {
    T& n = (*slab_)[h];
    const SlabHandle p = n.*PrevM;
    const SlabHandle x = n.*NextM;
    if (p != kNullHandle)
      (*slab_)[p].*NextM = x;
    else
      head_ = x;
    if (x != kNullHandle)
      (*slab_)[x].*PrevM = p;
    else
      tail_ = p;
    n.*PrevM = n.*NextM = kNullHandle;
    ULC_ENSURE(size_ > 0, "SlabList erase from an empty list");
    --size_;
  }

  void move_front(SlabHandle h) {
    if (head_ == h) return;
    erase(h);
    push_front(h);
  }

  void move_back(SlabHandle h) {
    if (tail_ == h) return;
    erase(h);
    push_back(h);
  }

  // Forgets the membership bookkeeping; the owner frees (or reuses) the
  // nodes itself.
  void clear() {
    head_ = tail_ = kNullHandle;
    size_ = 0;
  }

 private:
  Slab<T>* slab_;
  SlabHandle head_ = kNullHandle;
  SlabHandle tail_ = kNullHandle;
  std::size_t size_ = 0;
};

}  // namespace ulc
