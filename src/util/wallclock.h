// The single place in src/ that may read the machine clock.
//
// Every simulated quantity in this repository is keyed to sim time or access
// index so runs replay bit-for-bit; the only legitimate uses of wall time are
// throughput reporting (wall_seconds / refs_per_sec) and they are explicitly
// excluded from determinism comparisons. The `wall-clock` rule in
// tools/ulc_lint.cpp rejects std::chrono clock calls anywhere else in src/ —
// this header is its allow-list. Do not use WallTimer to derive anything that
// feeds back into simulation state or structured results beyond the two
// fields above.
#pragma once

#include <chrono>  // ulc-lint: allow(wall-clock)

namespace ulc {

// Monotonic stopwatch started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}  // ulc-lint: allow(wall-clock)

  double elapsed_seconds() const {
    const auto now = Clock::now();  // ulc-lint: allow(wall-clock)
    return std::chrono::duration<double>(now - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;  // ulc-lint: allow(wall-clock)
  Clock::time_point start_;
};

}  // namespace ulc
