// Group-of-16 byte probing primitives and the software-prefetch wrapper.
//
// This header is the ONLY place raw SIMD intrinsics are allowed (enforced by
// ulc_lint's `raw-intrinsic` rule): every consumer works through the Group16
// policy types below, so the portable fallback can never silently rot — the
// scalar implementation is compiled, tested and differentially fuzzed against
// the SIMD one on every platform (tests/flat_hash_test.cpp).
//
// Semantics contract (identical across all three implementations, which is
// what makes SIMD/scalar builds bit-compatible):
//   * a "group" is 16 consecutive control bytes (any alignment — the x86
//     path uses unaligned loads, which cost the same as aligned ones on
//     every SSE2-era-onward core);
//   * match_byte(g, b)  -> bit i set  iff  g[i] == b;
//   * match_empty(g)    -> bit i set  iff  g[i] == kCtrlEmpty;
//   * match_free(g)     -> bit i set  iff  g[i] is kCtrlEmpty or
//     kCtrlTombstone (both have the high bit set; full bytes are 7-bit hash
//     fragments with the high bit clear);
//   * bits are numbered by byte index (bit 0 = first byte), so iterating set
//     bits low-to-high visits slots in ascending address order — the probe
//     order every implementation must share.
//
// Implementation selection is compile-time: SSE2 on x86-64 (baseline, no
// -m flags needed), NEON on AArch64, the portable scalar loop elsewhere.
// -DULC_FORCE_SCALAR_GROUPS=ON forces the scalar path on any platform; the
// throughput gate measures that build too (BENCH_throughput.json), so the
// fallback's performance is tracked, not just its correctness.
#pragma once

#include <cstdint>

#if defined(ULC_FORCE_SCALAR_GROUPS)
// Portable fallback forced (differential tests, fallback gate measurement).
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define ULC_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#define ULC_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace ulc {

// Control-byte values shared by every group-probed table. Full slots store
// the 7-bit hash fragment (high bit clear), so one match_byte() never
// confuses a sentinel with a fragment.
inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::uint8_t kCtrlTombstone = 0x81;
inline constexpr std::size_t kGroupWidth = 16;

// Best-effort prefetch into the closest cache level; a no-op where the
// builtin is unavailable. Issuing one is always safe (prefetches never
// fault), so callers need no validity guard beyond "pointer-shaped".
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 3);
#else
  (void)p;
#endif
}

// Write-intent variant: requests the line in exclusive state, so a store
// that follows skips the read-for-ownership stall.
inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1, 3);
#else
  (void)p;
#endif
}

#if defined(ULC_SIMD_SSE2)

// SSE2 group probe: one 16-byte load + byte-compare + movemask.
struct Group16Simd {
  static constexpr const char* kName = "sse2";
  static std::uint32_t match_byte(const std::uint8_t* g, std::uint8_t b) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(g));
    const __m128i m = _mm_cmpeq_epi8(v, _mm_set1_epi8(static_cast<char>(b)));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(m));
  }
  static std::uint32_t match_empty(const std::uint8_t* g) {
    return match_byte(g, kCtrlEmpty);
  }
  static std::uint32_t match_free(const std::uint8_t* g) {
    // Empty and tombstone are the only bytes with the sign bit set, so the
    // movemask of the raw vector is exactly the free mask.
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(g));
    return static_cast<std::uint32_t>(_mm_movemask_epi8(v));
  }
};

#elif defined(ULC_SIMD_NEON)

// NEON group probe: compare, then narrow the 128-bit lane mask to a 64-bit
// nibble mask and spread it down to one bit per byte.
struct Group16Simd {
  static constexpr const char* kName = "neon";
  static std::uint32_t mask_of(uint8x16_t eq) {
    // vshrn narrows each 16-bit lane's high nibble; every matched byte
    // contributes one nibble of 0xF in the 64-bit result.
    const uint8x8_t narrowed =
        vshrn_n_u16(vreinterpretq_u16_u8(eq), 4);
    const std::uint64_t nibbles =
        vget_lane_u64(vreinterpret_u64_u8(narrowed), 0);
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      if ((nibbles >> (i * 4)) & 0x1) mask |= (1u << i);
    }
    return mask;
  }
  static std::uint32_t match_byte(const std::uint8_t* g, std::uint8_t b) {
    return mask_of(vceqq_u8(vld1q_u8(g), vdupq_n_u8(b)));
  }
  static std::uint32_t match_empty(const std::uint8_t* g) {
    return match_byte(g, kCtrlEmpty);
  }
  static std::uint32_t match_free(const std::uint8_t* g) {
    // Sign bit set == empty or tombstone, as in the SSE2 path.
    return mask_of(vcgeq_u8(vld1q_u8(g), vdupq_n_u8(0x80)));
  }
};

#endif

// Portable scalar fallback — the reference semantics the SIMD paths must
// reproduce bit-for-bit (differentially fuzzed in flat_hash_test).
struct Group16Scalar {
  static constexpr const char* kName = "scalar";
  static std::uint32_t match_byte(const std::uint8_t* g, std::uint8_t b) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      if (g[i] == b) mask |= (1u << i);
    }
    return mask;
  }
  static std::uint32_t match_empty(const std::uint8_t* g) {
    return match_byte(g, kCtrlEmpty);
  }
  static std::uint32_t match_free(const std::uint8_t* g) {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < kGroupWidth; ++i) {
      if (g[i] & 0x80) mask |= (1u << i);
    }
    return mask;
  }
};

#if defined(ULC_SIMD_SSE2) || defined(ULC_SIMD_NEON)
using Group16 = Group16Simd;
#else
using Group16 = Group16Scalar;
#endif

}  // namespace ulc
