// Deterministic open-addressing hash map for the simulation hot paths.
//
// Every per-reference operation of the reproduction ends in a block-id
// lookup; std::unordered_map pays a pointer chase per node plus an
// allocation per insert, which is the dominant cost once the metadata per
// block is as small as the paper's ~17 bytes. FlatMap stores key/value
// pairs inline in one power-of-two slot array (linear probing, splitmix64
// mixing, tombstone deletion), so a lookup is one hash, one probe run over
// contiguous memory, and no allocation.
//
// Determinism contract (enforced by `ulc_lint`'s unordered-iteration rule
// elsewhere): FlatMap exposes NO iteration API at all, so probe layout —
// the only state that depends on insertion order — can never leak into
// simulator output. Two maps holding the same key set answer every query
// identically regardless of the insertion/erasure history that built them.
//
// Keys and values must be trivially copyable (they are memcpy'd on rehash);
// keys are hashed by their integer value via splitmix64's finalizer, which
// is bijective — no two block ids collide before the mask is applied.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/ensure.h"

namespace ulc {

// SplitMix64 finalizer (Steele et al.); bijective 64-bit mixer.
inline std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename Key, typename Value>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<Key>,
                "FlatMap keys are memcpy'd on rehash");
  static_assert(std::is_trivially_copyable_v<Value>,
                "FlatMap values are memcpy'd on rehash");
  static_assert(std::is_integral_v<Key> || std::is_enum_v<Key>,
                "FlatMap hashes keys by integer value");

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Slot-array capacity (power of two; 0 before the first insert).
  std::size_t bucket_count() const { return slots_.size(); }
  // Number of rehashes performed since construction/clear; a structure that
  // reserve()s to capacity up front must keep this at zero while running
  // (no rehash-during-measurement).
  std::uint64_t rehashes() const { return rehashes_; }

  // Pre-sizes the table so `n` keys fit without rehashing.
  void reserve(std::size_t n) {
    const std::size_t want = capacity_for(n);
    if (want > slots_.size()) rehash(want);
  }

  Value* find(Key key) {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = bucket_of(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) return nullptr;
      if (s.state == kFull && s.key == key) return &s.value;
    }
  }
  const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(Key key) const { return find(key) != nullptr; }

  // Inserts a key that must be absent.
  void insert_new(Key key, Value value) {
    Value* v = probe_insert(key);
    ULC_REQUIRE(v != nullptr, "FlatMap::insert_new of a present key");
    *v = value;
  }

  // Inserts or overwrites.
  void put(Key key, Value value) {
    grow_if_needed();
    for (std::size_t i = bucket_of(key), tomb = kNone;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.state == kFull && s.key == key) {
        s.value = value;
        return;
      }
      if (s.state == kTombstone && tomb == kNone) tomb = i;
      if (s.state == kEmpty) {
        place(tomb == kNone ? i : tomb, key, value);
        return;
      }
    }
  }

  bool erase(Key key) {
    if (slots_.empty()) return false;
    for (std::size_t i = bucket_of(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.state == kEmpty) return false;
      if (s.state == kFull && s.key == key) {
        s.state = kTombstone;
        --size_;
        ++tombstones_;
        return true;
      }
    }
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
    tombstones_ = 0;
    rehashes_ = 0;
  }

 private:
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTombstone = 2 };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinBuckets = 16;

  struct Slot {
    Key key;
    Value value;
    std::uint8_t state = kEmpty;
  };

  std::size_t bucket_of(Key key) const {
    return static_cast<std::size_t>(
               splitmix64_mix(static_cast<std::uint64_t>(key))) &
           mask_;
  }

  // Smallest power-of-two table that keeps `n` keys under 7/8 load.
  static std::size_t capacity_for(std::size_t n) {
    std::size_t cap = kMinBuckets;
    while (n + n / 7 + 1 > cap - cap / 8) cap <<= 1;
    return cap;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      rehash(kMinBuckets);
      return;
    }
    // Rehash when live + dead slots pass 7/8 of the table. If the live count
    // alone is small the table size is kept (tombstone purge), so a
    // steady-state erase/insert workload cannot grow the table unboundedly.
    if ((size_ + tombstones_ + 1) * 8 > slots_.size() * 7) {
      const std::size_t want = capacity_for(size_ + 1);
      rehash(want > slots_.size() ? want : slots_.size());
    }
  }

  void place(std::size_t i, Key key, Value value) {
    if (slots_[i].state == kTombstone) --tombstones_;
    slots_[i] = Slot{key, value, kFull};
    ++size_;
  }

  // Returns the value slot for a new key, or nullptr if the key exists.
  Value* probe_insert(Key key) {
    grow_if_needed();
    for (std::size_t i = bucket_of(key), tomb = kNone;; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.state == kFull && s.key == key) return nullptr;
      if (s.state == kTombstone && tomb == kNone) tomb = i;
      if (s.state == kEmpty) {
        const std::size_t at = tomb == kNone ? i : tomb;
        place(at, key, Value{});
        return &slots_[at].value;
      }
    }
  }

  void rehash(std::size_t new_buckets) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_buckets, Slot{});
    mask_ = new_buckets - 1;
    tombstones_ = 0;
    size_ = 0;
    if (!old.empty()) ++rehashes_;
    for (const Slot& s : old) {
      if (s.state != kFull) continue;
      for (std::size_t i = bucket_of(s.key);; i = (i + 1) & mask_) {
        if (slots_[i].state == kEmpty) {
          slots_[i] = Slot{s.key, s.value, kFull};
          ++size_;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace ulc
