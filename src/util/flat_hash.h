// Deterministic open-addressing hash map for the simulation hot paths.
//
// Every per-reference operation of the reproduction ends in a block-id
// lookup; std::unordered_map pays a pointer chase per node plus an
// allocation per insert, which is the dominant cost once the metadata per
// block is as small as the paper's ~17 bytes. FlatMap is a SwissTable-style
// table: a control-byte array holds one byte per slot (0x80 empty, 0x81
// tombstone, otherwise the low 7 bits of the key's hash), probed a group of
// 16 bytes at a time through the Group16 policy (util/simd.h: SSE2 compare +
// movemask, NEON, or a portable scalar loop). A lookup is one hash, one or
// two 16-byte control loads, and only then a key compare on the (almost
// always unique) fragment match — key/value pairs live in a parallel flat
// array and are touched once.
//
// Determinism contract (enforced by `ulc_lint`'s unordered-iteration rule
// elsewhere): FlatMap exposes NO iteration API at all, so probe layout —
// the only state that depends on insertion order — can never leak into
// simulator output. Two maps holding the same key set answer every query
// identically regardless of the insertion/erasure history that built them.
// The SIMD and scalar group policies produce bit-identical match masks and
// share this file's load-factor arithmetic, so the two builds also agree on
// every rehash point (pinned by the differential fuzz in flat_hash_test).
//
// Load-factor arithmetic (kept verbatim from the pre-SwissTable FlatMap so
// existing reserve()-to-capacity callers keep their zero-rehash guarantee):
//   * capacity_for(n): smallest power-of-two cap (>= 16) with
//     n + n/7 + 1 <= cap - cap/8;
//   * growth triggers pre-insert when (size + tombstones + 1) * 8 > cap * 7.
// Proof that reserve(n) then n inserts never rehashes: cap - cap/8 is
// exactly 7*cap/8 for power-of-two cap >= 16, so capacity_for gives
// n + n/7 + 1 <= 7*cap/8, hence n < 7*cap/8. Insert i (0-indexed, table
// fresh so tombstones = 0) triggers growth iff (i + 1) * 8 > 7 * cap; the
// largest i is n - 1 and 8n <= 7*cap, so the trigger never fires. The exact
// boundary (first growth on insert index 7*cap/8 without a reserve) is
// pinned in tests/flat_hash_test.cpp.
//
// Keys and values must be trivially copyable (they are memcpy'd on rehash);
// keys are hashed by their integer value via splitmix64's finalizer, which
// is bijective — no two block ids collide before the mask is applied.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/ensure.h"
#include "util/simd.h"

namespace ulc {

// SplitMix64 finalizer (Steele et al.); bijective 64-bit mixer.
inline std::uint64_t splitmix64_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Process-wide probe-length accounting for find() calls, for diagnosing
// probing regressions from bench/throughput_bench. Debug-only: compiled out
// under NDEBUG so Release hot paths carry zero overhead. Atomics (relaxed)
// keep the counters race-free under the concurrent runtime's TSan suites.
struct FlatProbeStats {
  std::uint64_t lookups = 0;       // find() calls against non-empty tables
  std::uint64_t groups_probed = 0; // 16-slot groups examined across them
  std::uint64_t max_groups = 0;    // longest single probe sequence
};

#if !defined(NDEBUG)
#define ULC_FLAT_HASH_PROBE_STATS 1
namespace detail {
inline std::atomic<std::uint64_t> g_probe_lookups{0};
inline std::atomic<std::uint64_t> g_probe_groups{0};
inline std::atomic<std::uint64_t> g_probe_max{0};
inline void record_probe(std::uint64_t groups) {
  g_probe_lookups.fetch_add(1, std::memory_order_relaxed);
  g_probe_groups.fetch_add(groups, std::memory_order_relaxed);
  std::uint64_t prev = g_probe_max.load(std::memory_order_relaxed);
  while (prev < groups && !g_probe_max.compare_exchange_weak(
                              prev, groups, std::memory_order_relaxed)) {
  }
}
}  // namespace detail
#endif

inline FlatProbeStats flat_probe_stats() {
  FlatProbeStats out;
#if defined(ULC_FLAT_HASH_PROBE_STATS)
  out.lookups = detail::g_probe_lookups.load(std::memory_order_relaxed);
  out.groups_probed = detail::g_probe_groups.load(std::memory_order_relaxed);
  out.max_groups = detail::g_probe_max.load(std::memory_order_relaxed);
#endif
  return out;
}

inline void reset_flat_probe_stats() {
#if defined(ULC_FLAT_HASH_PROBE_STATS)
  detail::g_probe_lookups.store(0, std::memory_order_relaxed);
  detail::g_probe_groups.store(0, std::memory_order_relaxed);
  detail::g_probe_max.store(0, std::memory_order_relaxed);
#endif
}

// Whether probe-length accounting is compiled in (false in Release).
inline constexpr bool flat_probe_stats_enabled() {
#if defined(ULC_FLAT_HASH_PROBE_STATS)
  return true;
#else
  return false;
#endif
}

template <typename Key, typename Value, typename Group = Group16>
class FlatMap {
  static_assert(std::is_trivially_copyable_v<Key>,
                "FlatMap keys are memcpy'd on rehash");
  static_assert(std::is_trivially_copyable_v<Value>,
                "FlatMap values are memcpy'd on rehash");
  static_assert(std::is_integral_v<Key> || std::is_enum_v<Key>,
                "FlatMap hashes keys by integer value");

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Slot-array capacity (power of two; 0 before the first insert).
  std::size_t bucket_count() const { return ctrl_.size(); }
  // Number of rehashes performed since construction/clear; a structure that
  // reserve()s to capacity up front must keep this at zero while running
  // (no rehash-during-measurement).
  std::uint64_t rehashes() const { return rehashes_; }

  // Pre-sizes the table so `n` keys fit without rehashing.
  void reserve(std::size_t n) {
    const std::size_t want = capacity_for(n);
    if (want > ctrl_.size()) rehash(want);
  }

  // Pulls the key's control group and slot group toward the cache ahead of
  // an access one request in the future. Non-mutating; safe on empty maps.
  void prefetch(Key key) const {
    if (ctrl_.empty()) return;
    const std::size_t g = group_of(hash_of(key));
    prefetch_read(ctrl_.data() + g * kGroupWidth);
    prefetch_read(slots_.get() + g * kGroupWidth);
  }

  Value* find(Key key) {
    if (ctrl_.empty()) return nullptr;
    const std::uint64_t h = hash_of(key);
    const std::uint8_t h2 = fragment_of(h);
#if defined(ULC_FLAT_HASH_PROBE_STATS)
    std::uint64_t groups = 0;
#endif
    for (std::size_t g = group_of(h);; g = (g + 1) & group_mask_) {
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
#if defined(ULC_FLAT_HASH_PROBE_STATS)
      ++groups;
#endif
      std::uint32_t match = Group::match_byte(ctrl, h2);
      while (match != 0) {
        const std::size_t i =
            g * kGroupWidth +
            static_cast<std::size_t>(std::countr_zero(match));
        if (slots_[i].key == key) {
#if defined(ULC_FLAT_HASH_PROBE_STATS)
          detail::record_probe(groups);
#endif
          return &slots_[i].value;
        }
        match &= match - 1;
      }
      if (Group::match_empty(ctrl) != 0) {
#if defined(ULC_FLAT_HASH_PROBE_STATS)
        detail::record_probe(groups);
#endif
        return nullptr;
      }
    }
  }
  const Value* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  bool contains(Key key) const { return find(key) != nullptr; }

  // Inserts a key that must be absent.
  void insert_new(Key key, Value value) {
    grow_if_needed();
    const std::uint64_t h = hash_of(key);
    const Probe p = find_or_prepare(key, h);
    ULC_REQUIRE(!p.found, "FlatMap::insert_new of a present key");
    place(p.index, fragment_of(h), key, value);
  }

  // Inserts or overwrites.
  void put(Key key, Value value) {
    grow_if_needed();
    const std::uint64_t h = hash_of(key);
    const Probe p = find_or_prepare(key, h);
    if (p.found) {
      slots_[p.index].value = value;
      return;
    }
    place(p.index, fragment_of(h), key, value);
  }

  bool erase(Key key) {
    if (ctrl_.empty()) return false;
    const std::uint64_t h = hash_of(key);
    const std::uint8_t h2 = fragment_of(h);
    for (std::size_t g = group_of(h);; g = (g + 1) & group_mask_) {
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
      std::uint32_t match = Group::match_byte(ctrl, h2);
      while (match != 0) {
        const std::size_t i =
            g * kGroupWidth +
            static_cast<std::size_t>(std::countr_zero(match));
        if (slots_[i].key == key) {
          // A slot may be reset to empty (instead of tombstoned) iff its
          // group still holds an empty byte: probes stop at the first group
          // with an empty, so no key's probe sequence has ever continued
          // *past* a non-full group — and a group that went full stays
          // empty-free until the next rehash (erases in it take the
          // tombstone branch), so non-fullness today proves non-fullness at
          // every earlier insert. This keeps the tombstone count near zero
          // under erase-heavy churn (prune()), which is what prevents the
          // repeated full-size purge rehashes the old byte-probed table
          // suffered. The decision reads only control bytes, so SIMD and
          // scalar builds agree on it bit-for-bit.
          if (Group::match_empty(ctrl) != 0) {
            ctrl_[i] = kCtrlEmpty;
          } else {
            ctrl_[i] = kCtrlTombstone;
            ++tombstones_;
          }
          --size_;
          return true;
        }
        match &= match - 1;
      }
      if (Group::match_empty(ctrl) != 0) return false;
    }
  }

  void clear() {
    ctrl_.clear();
    slots_.reset();
    group_mask_ = 0;
    size_ = 0;
    tombstones_ = 0;
    rehashes_ = 0;
  }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinBuckets = 16;

  struct Pair {
    Key key;
    Value value;
  };
  struct Probe {
    std::size_t index;
    bool found;
  };

  static std::uint64_t hash_of(Key key) {
    return splitmix64_mix(static_cast<std::uint64_t>(key));
  }
  // Low 7 bits are the control fragment (high bit clear, so a fragment can
  // never alias the empty/tombstone sentinels)...
  static std::uint8_t fragment_of(std::uint64_t h) {
    return static_cast<std::uint8_t>(h & 0x7F);
  }
  // ...and the bits above them pick the starting group, so fragment and
  // group index are independent.
  std::size_t group_of(std::uint64_t h) const {
    return static_cast<std::size_t>(h >> 7) & group_mask_;
  }

  // Smallest power-of-two table that keeps `n` keys under 7/8 load.
  static std::size_t capacity_for(std::size_t n) {
    std::size_t cap = kMinBuckets;
    while (n + n / 7 + 1 > cap - cap / 8) cap <<= 1;
    return cap;
  }

  void grow_if_needed() {
    if (ctrl_.empty()) {
      rehash(kMinBuckets);
      return;
    }
    // Rehash when live + dead slots pass 7/8 of the table. If the live count
    // alone is small the table size is kept (tombstone purge), so a
    // steady-state erase/insert workload cannot grow the table unboundedly.
    if ((size_ + tombstones_ + 1) * 8 > ctrl_.size() * 7) {
      const std::size_t want = capacity_for(size_ + 1);
      rehash(want > ctrl_.size() ? want : ctrl_.size());
    }
  }

  // Locates `key`, or the slot a fresh insert of it must use: the first
  // free slot (tombstone or empty) along the probe sequence. The scan stops
  // at the first group containing a truly-empty byte — beyond it the key
  // cannot exist, and that group contributes a free slot if none was seen.
  Probe find_or_prepare(Key key, std::uint64_t h) const {
    const std::uint8_t h2 = fragment_of(h);
    std::size_t insert_at = kNone;
    for (std::size_t g = group_of(h);; g = (g + 1) & group_mask_) {
      const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
      std::uint32_t match = Group::match_byte(ctrl, h2);
      while (match != 0) {
        const std::size_t i =
            g * kGroupWidth +
            static_cast<std::size_t>(std::countr_zero(match));
        if (slots_[i].key == key) return Probe{i, true};
        match &= match - 1;
      }
      if (insert_at == kNone) {
        const std::uint32_t free = Group::match_free(ctrl);
        if (free != 0) {
          insert_at = g * kGroupWidth +
                      static_cast<std::size_t>(std::countr_zero(free));
        }
      }
      if (Group::match_empty(ctrl) != 0) return Probe{insert_at, false};
    }
  }

  void place(std::size_t i, std::uint8_t h2, Key key, Value value) {
    if (ctrl_[i] == kCtrlTombstone) --tombstones_;
    ctrl_[i] = h2;
    slots_[i] = Pair{key, value};
    ++size_;
  }

  void rehash(std::size_t new_buckets) {
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::unique_ptr<Pair[]> old_slots = std::move(slots_);
    ctrl_.assign(new_buckets, kCtrlEmpty);
    // Deliberately uninitialized: a pair is only ever read where its control
    // byte says "full", and place() writes the pair before setting that
    // byte. Zeroing here would memset 16+ bytes per slot on every growth
    // step — the dominant rehash cost, 8x the control array's.
    slots_ = std::make_unique_for_overwrite<Pair[]>(new_buckets);
    group_mask_ = new_buckets / kGroupWidth - 1;
    tombstones_ = 0;
    size_ = 0;
    if (!old_ctrl.empty()) ++rehashes_;
    // Reinsertion in old slot-index order; the fresh table has no
    // tombstones, so the first empty byte is the insertion point.
    // The reinserts scatter-write across the fresh table, so each one is a
    // cold-line stall; running the hash a few slots ahead and prefetching
    // the destination group overlaps those misses.
    constexpr std::size_t kRehashAhead = 8;
    for (std::size_t idx = 0; idx < old_ctrl.size(); ++idx) {
      const std::size_t ahead = idx + kRehashAhead;
      if (ahead < old_ctrl.size() && (old_ctrl[ahead] & 0x80) == 0) {
        const std::size_t ag = group_of(hash_of(old_slots[ahead].key));
        prefetch_write(ctrl_.data() + ag * kGroupWidth);
        prefetch_write(slots_.get() + ag * kGroupWidth);
      }
      if ((old_ctrl[idx] & 0x80) != 0) continue;  // empty or tombstone
      const Pair& s = old_slots[idx];
      const std::uint64_t h = hash_of(s.key);
      for (std::size_t g = group_of(h);; g = (g + 1) & group_mask_) {
        const std::uint8_t* ctrl = ctrl_.data() + g * kGroupWidth;
        const std::uint32_t free = Group::match_empty(ctrl);
        if (free != 0) {
          const std::size_t i =
              g * kGroupWidth +
              static_cast<std::size_t>(std::countr_zero(free));
          ctrl_[i] = fragment_of(h);
          slots_[i] = s;
          ++size_;
          break;
        }
      }
    }
  }

  // One control byte per slot, probed kGroupWidth at a time; slots_ always
  // has ctrl_.size() entries (a power of two >= kMinBuckets) and is
  // uninitialized where the control byte is not a hash fragment.
  std::vector<std::uint8_t> ctrl_;
  std::unique_ptr<Pair[]> slots_;
  std::size_t group_mask_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::uint64_t rehashes_ = 0;
};

}  // namespace ulc
