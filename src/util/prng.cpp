#include "util/prng.h"

#include <algorithm>
#include <cmath>

#include "util/ensure.h"

namespace ulc {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  ULC_REQUIRE(bound > 0, "next_below bound must be positive");
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  ULC_REQUIRE(n > 0, "ZipfSampler needs at least one item");
  ULC_REQUIRE(theta >= 0.0, "ZipfSampler theta must be non-negative");
  cdf_.resize(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[static_cast<std::size_t>(i)] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace ulc
