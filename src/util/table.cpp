#include "util/table.h"

#include <algorithm>

#include "util/ensure.h"

namespace ulc {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ULC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  ULC_REQUIRE(cells.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_text() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string TablePrinter::to_csv() const {
  auto csv_escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += csv_escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void TablePrinter::print(std::FILE* out) const {
  const std::string text = to_text();
  std::fwrite(text.data(), 1, text.size(), out);
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace ulc
