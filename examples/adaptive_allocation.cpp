// Scenario: the dynamic-partition principle (paper §3.2.2), shown at the
// protocol level. Two clients share one server cache. Client A loops over a
// working set far larger than its own cache; client B's hot set fits
// locally. The server's gLRU should hand nearly all of its buffers to A —
// and re-balance when the clients swap roles half-way through.
//
// Unlike the other examples, this one wires UlcClient engines and the
// GlruServer together by hand, playing the messages itself — the way an
// actual client/server implementation would embed the library.
//
//   $ ./build/examples/adaptive_allocation
#include <cstdio>
#include <vector>

#include "ulc/glru_server.h"
#include "ulc/ulc_client.h"
#include "workloads/synthetic.h"

using namespace ulc;

namespace {

// Minimal driver: one ULC engine per client with an elastic second level
// over a shared gLRU server, with immediate notice delivery.
class TwoLevelCluster {
 public:
  TwoLevelCluster(std::size_t n_clients, std::size_t client_cap,
                  std::size_t server_cap)
      : server_(server_cap) {
    UlcConfig cfg;
    cfg.capacities = {client_cap, 0};
    cfg.last_level_elastic = true;
    for (std::size_t c = 0; c < n_clients; ++c)
      clients_.push_back(std::make_unique<UlcClient>(cfg));
  }

  void access(ClientId c, BlockId b) {
    UlcClient& client = *clients_[c];
    if (client.level_of(b) == 1 && !server_.contains(b)) client.external_evict(b);
    const UlcAccess& a = client.access(b);
    if (a.hit_level == 1 || (a.hit_level == kLevelOut && server_.contains(b))) {
      if (a.retrieve.cache_at == 1) {
        server_.refresh(b, c);
      } else if (a.retrieve.cache_at == 0 && server_.contains(b) &&
                 server_.owner_of(b) == c) {
        server_.take(b);
      }
    } else if (a.hit_level == kLevelOut && a.retrieve.cache_at == 1) {
      place(b, c);
    }
    for (const DemoteCmd& d : a.demotions) place(d.block, c);
  }

  std::size_t owned_by(ClientId c) const { return server_.owned_by(c); }

 private:
  void place(BlockId b, ClientId owner) {
    const auto r = server_.place(b, owner);
    if (server_.full()) {
      for (auto& cl : clients_) cl->set_elastic_full(true);
    }
    if (r.evicted && clients_[r.victim_owner]->level_of(r.victim) == 1)
      clients_[r.victim_owner]->external_evict(r.victim);
  }

  std::vector<std::unique_ptr<UlcClient>> clients_;
  GlruServer server_;
};

}  // namespace

int main() {
  constexpr std::size_t kClientCap = 256;
  constexpr std::size_t kServerCap = 2048;
  TwoLevelCluster cluster(2, kClientCap, kServerCap);

  auto big_loop_a = make_loop_source(0, 2000);       // needs the server
  auto small_hot_a = make_zipf_source(10000, 128, 1.1, true, 3);
  auto big_loop_b = make_loop_source(20000, 2000);
  auto small_hot_b = make_zipf_source(30000, 128, 1.1, true, 5);

  Rng rng(9);
  std::printf("phase 1: client 0 loops over 2000 blocks, client 1 works a "
              "small hot set\n\n");
  std::printf("%10s %18s %18s\n", "references", "server: client 0",
              "server: client 1");
  for (int step = 0; step < 8; ++step) {
    for (int i = 0; i < 10000; ++i) {
      cluster.access(0, big_loop_a->next(rng));
      cluster.access(1, small_hot_b->next(rng));
    }
    std::printf("%10d %18zu %18zu\n", (step + 1) * 20000, cluster.owned_by(0),
                cluster.owned_by(1));
  }

  std::printf("\nphase 2: the clients swap roles\n\n");
  for (int step = 0; step < 8; ++step) {
    for (int i = 0; i < 10000; ++i) {
      cluster.access(0, small_hot_a->next(rng));
      cluster.access(1, big_loop_b->next(rng));
    }
    std::printf("%10d %18zu %18zu\n", (step + 1) * 20000, cluster.owned_by(0),
                cluster.owned_by(1));
  }

  std::printf("\nThe gLRU allocation follows each client's working-set "
              "demand, as the\ndynamic partition principle requires.\n");
  return 0;
}
