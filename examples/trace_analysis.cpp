// Scenario: analyze your own block trace with the Section-2 locality
// measures — which fraction of its references each list segment would serve
// under ND / R / NLD / LLD-R ranking, and how much cross-boundary movement
// (demotion traffic) each measure would cost.
//
//   $ ./build/examples/trace_analysis [trace.txt]
//
// The trace file format is one "<client> <block>" pair per line ('#'
// comments allowed). Without an argument the example synthesizes a mixed
// workload and analyzes that.
#include <cstdio>

#include "measures/analyzers.h"
#include "trace/trace_io.h"
#include "util/table.h"
#include "workloads/synthetic.h"

using namespace ulc;

int main(int argc, char** argv) {
  Trace trace;
  if (argc > 1) {
    std::string error;
    auto loaded = load_trace_text(argv[1], &error);
    if (!loaded) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1], error.c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else {
    std::vector<PatternPtr> sources;
    sources.push_back(make_loop_source(0, 400));
    sources.push_back(make_zipf_source(1000, 800, 0.9, true, 3));
    sources.push_back(make_temporal_source(3000, 600, 0.1, 4.0));
    auto src =
        make_mixture_source(std::move(sources), {0.35, 0.35, 0.30});
    trace = generate(*src, 60000, 11, "demo-mixed");
    std::printf("(no trace given; analyzing a synthesized mixed workload)\n\n");
  }

  const TraceStats stats = compute_stats(trace);
  std::printf("trace %s: %zu references, %zu distinct blocks, %zu client(s)\n\n",
              trace.name().c_str(), stats.references, stats.unique_blocks,
              stats.clients);

  TablePrinter dist({"measure", "cum seg1-2", "cum seg1-5", "tail seg9-10",
                     "movement/ref"});
  for (const MeasureReport& rep : analyze_all_measures(trace)) {
    double movement = 0.0;
    for (double m : rep.movement_ratio) movement += m;
    dist.add_row({measure_name(rep.measure), fmt_percent(rep.cumulative_ratio[1], 1),
                  fmt_percent(rep.cumulative_ratio[4], 1),
                  fmt_percent(rep.segment_ratio[8] + rep.segment_ratio[9], 1),
                  fmt_double(movement, 3)});
  }
  dist.print();

  std::printf(
      "\nReading the table: a measure fit for multi-level caching serves most\n"
      "references from its head segments (high cum values) while moving few\n"
      "blocks across segment boundaries (low movement). The paper builds ULC\n"
      "on LLD-R because it is the only *on-line* measure that does both.\n");
  return 0;
}
