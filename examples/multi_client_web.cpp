// Scenario: a 7-node web-server cluster with 8MB node caches in front of
// one shared storage-server cache — the paper's multi-client httpd setting.
//
// Each node runs its own ULC engine; the storage server allocates its
// buffers among the nodes with a global LRU (gLRU) and tells an owner, by a
// notice piggybacked on its next retrieved block, when one of its blocks
// was replaced. Shared documents are kept at the server for everyone even
// when one node pulls a private copy into its own cache.
//
//   $ ./build/examples/multi_client_web
#include <cstdio>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "workloads/paper_presets.h"

int main() {
  using namespace ulc;

  const Trace trace = preset_httpd_multi(/*scale=*/0.05, /*seed=*/1);
  const std::size_t client_cap = 1024;  // 8MB per node
  const std::size_t n_clients = 7;
  const CostModel model = CostModel::paper_two_level();

  std::printf("httpd-like cluster: %zu block references, 7 nodes x 8MB\n\n",
              trace.size());
  std::printf("%-10s %12s %12s %10s %12s %10s\n", "server MB", "node hit",
              "server hit", "miss", "demote/ref", "T_ave ms");

  for (std::size_t server_cap : {4096, 8192, 16384, 32768}) {
    auto scheme = make_ulc_multi(client_cap, server_cap, n_clients);
    const RunResult r = run_scheme(*scheme, trace, model);
    std::printf("%-10zu %11.1f%% %11.1f%% %9.1f%% %12.3f %10.3f\n",
                server_cap * 8 / 1024, 100 * r.stats.hit_ratio(0),
                100 * r.stats.hit_ratio(1), 100 * r.stats.miss_ratio(),
                r.stats.demotion_ratio(0), r.t_ave_ms);
  }

  std::printf("\nProtocol traffic at the 128MB server point:\n");
  auto scheme = make_ulc_multi(client_cap, 16384, n_clients);
  const RunResult r = run_scheme(*scheme, trace, model);
  std::printf("  piggybacked replacement notices: %llu\n",
              static_cast<unsigned long long>(r.stats.eviction_notices));
  std::printf("  shared-block metadata repairs:   %llu\n",
              static_cast<unsigned long long>(r.stats.stale_syncs));
  return 0;
}
