// Scenario: the runtime library as a real tiered cache — a RAM buffer pool
// over an SSD cache file over a disk image, with ULC deciding which tier
// holds which block. Unlike the simulators, this moves actual bytes: reads
// return real data, writes are durable after flush().
//
//   $ ./build/examples/ssd_cache
#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/block_cache.h"
#include "runtime/tier.h"
#include "util/prng.h"
#include "workloads/synthetic.h"

using namespace ulc;

int main() {
  constexpr std::size_t kBlockSize = 8192;
  const std::string dir = "/tmp";
  const std::string disk_path = dir + "/ulc_example_disk.img";
  const std::string ssd_path = dir + "/ulc_example_ssd.img";
  std::remove(disk_path.c_str());
  std::remove(ssd_path.c_str());

  auto origin = make_file_origin(disk_path, kBlockSize);
  auto ssd = make_file_near_tier(ssd_path, /*capacity_blocks=*/512, kBlockSize);

  // Seed the "disk" with identifiable content.
  std::vector<std::byte> buf(kBlockSize);
  for (BlockId b = 0; b < 2048; ++b) {
    std::snprintf(reinterpret_cast<char*>(buf.data()), kBlockSize,
                  "block %llu, generation 0", static_cast<unsigned long long>(b));
    origin->write(b, buf);
  }

  BlockCacheConfig cfg;
  cfg.block_size = kBlockSize;
  cfg.memory_blocks = 128;
  BlockCache cache(cfg, *ssd, *origin);

  // A database-ish access mix: hot index pages + a table-scan loop + writes.
  std::vector<PatternPtr> sources;
  sources.push_back(make_zipf_source(0, 256, 1.0, true, 3));  // hot pages
  sources.push_back(make_loop_source(256, 400));              // scan loop
  auto src = make_mixture_source(std::move(sources), {0.6, 0.4});

  Rng rng(42);
  for (int i = 0; i < 60000; ++i) {
    const BlockId b = src->next(rng);
    if (rng.next_bool(0.2)) {
      std::snprintf(reinterpret_cast<char*>(buf.data()), kBlockSize,
                    "block %llu, updated at op %d",
                    static_cast<unsigned long long>(b), i);
      cache.write(b, buf);
    } else {
      cache.read(b, buf);
    }
  }
  cache.flush();

  const BlockCacheStats s = cache.stats();
  const double total = static_cast<double>(s.reads + s.writes);
  std::printf("operations:        %llu reads, %llu writes\n",
              static_cast<unsigned long long>(s.reads),
              static_cast<unsigned long long>(s.writes));
  std::printf("RAM tier hits:     %5.1f%%  (128 blocks = 1 MB)\n",
              100.0 * static_cast<double>(s.memory_hits) / total);
  std::printf("SSD tier hits:     %5.1f%%  (512 blocks = 4 MB)\n",
              100.0 * static_cast<double>(s.near_hits) / total);
  std::printf("disk reads:        %5.1f%%\n",
              100.0 * static_cast<double>(s.origin_reads) / total);
  std::printf("RAM->SSD demotions: %llu (%.2f per 100 ops)\n",
              static_cast<unsigned long long>(s.demotions),
              100.0 * static_cast<double>(s.demotions) / total);
  std::printf("write-backs:       %llu\n",
              static_cast<unsigned long long>(s.writebacks));

  // Prove durability: re-open the disk image cold and check a block.
  cache.flush();
  auto reopened = make_file_origin(disk_path, kBlockSize);
  reopened->read(0, buf);
  std::printf("\nblock 0 on disk after flush: \"%.40s\"\n",
              reinterpret_cast<const char*>(buf.data()));

  std::remove(disk_path.c_str());
  std::remove(ssd_path.c_str());
  return 0;
}
