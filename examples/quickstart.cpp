// Quickstart: simulate a three-level buffer-cache hierarchy (client /
// server / disk-array cache) under the ULC protocol and print where the
// hits land and what the average block access time is.
//
//   $ ./build/examples/quickstart
//
// The public API in three steps:
//   1. get a workload (any ulc::Trace — synthesize one or load a file),
//   2. build a scheme with make_ulc() (or make_uni_lru / make_ind_lru /
//      make_mq_hierarchy to compare),
//   3. run it through run_scheme() with a CostModel.
#include <cstdio>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "workloads/synthetic.h"

int main() {
  using namespace ulc;

  // 1. A skewed workload: 20,000 blocks (160MB at 8KB/block), Zipf
  //    popularity, 200,000 references.
  auto source = make_zipf_source(/*base=*/0, /*n_blocks=*/20000, /*theta=*/0.9);
  const Trace trace = generate(*source, 200000, /*seed=*/42, "quickstart");

  // 2. Three cache levels of 2,000 blocks (~16MB) each, coordinated by ULC.
  auto scheme = make_ulc({2000, 2000, 2000});

  // 3. The paper's cost model: 1ms LAN, 0.2ms SAN, 10ms disk; the first
  //    tenth of the trace warms the caches.
  const CostModel model = CostModel::paper_three_level();
  const RunResult result = run_scheme(*scheme, trace, model);

  std::printf("workload: %zu references over 20000 blocks\n\n", trace.size());
  for (std::size_t level = 0; level < 3; ++level) {
    std::printf("L%zu hit rate: %5.1f%%   (hit time %.1f ms)\n", level + 1,
                100.0 * result.stats.hit_ratio(level), model.hit_time(level));
  }
  std::printf("miss rate:   %5.1f%%   (miss time %.1f ms)\n",
              100.0 * result.stats.miss_ratio(), model.miss_time());
  std::printf("demotion rates: L1->L2 %.1f%%, L2->L3 %.1f%%\n",
              100.0 * result.stats.demotion_ratio(0),
              100.0 * result.stats.demotion_ratio(1));
  std::printf("\naverage access time: %.3f ms  (hits %.3f + misses %.3f + "
              "demotions %.3f)\n",
              result.t_ave_ms, result.time.hit_component,
              result.time.miss_component, result.time.demotion_component);
  return 0;
}
