// Scenario: a database node whose table scans loop over ~94MB of data while
// its caches are 50MB per level — the paper's tpcc1 case study, and the
// situation where the choice of multi-level protocol matters most.
//
// An LRU client cache is useless against a loop bigger than itself; an
// unattended second level sees only the locality-stripped miss stream; a
// unified LRU fixes the hit rate but demotes a block on *every* reference.
// ULC observes that every loop block comes back at the same distance (its
// LLD), parks the first half of the loop at L1 and the rest at L2 once, and
// never moves them again.
//
//   $ ./build/examples/database_cache
#include <cstdio>

#include "hierarchy/hierarchy.h"
#include "hierarchy/runner.h"
#include "workloads/synthetic.h"

int main() {
  using namespace ulc;

  // TPC-C-like: a dominant 12,000-block scan loop plus sparse random
  // excursions over the rest of a 32,768-block (256MB) database.
  std::vector<PatternPtr> sources;
  sources.push_back(make_loop_source(0, 12000));
  sources.push_back(make_uniform_source(12000, 20768));
  auto src = make_mixture_source(std::move(sources), {0.98, 0.02});
  const Trace trace = generate(*src, 400000, /*seed=*/7, "tpcc-like");

  const std::vector<std::size_t> caps(3, 6400);  // 50MB x 3 levels
  const CostModel model = CostModel::paper_three_level();

  std::printf("table-scan loop: 12000 blocks; caches: 3 x 6400 blocks\n\n");
  std::printf("%-8s %8s %8s %8s %8s %12s %12s\n", "scheme", "L1", "L2", "L3",
              "miss", "demote(1,2)", "T_ave (ms)");

  std::vector<SchemePtr> schemes;
  schemes.push_back(make_ind_lru(caps));
  schemes.push_back(make_uni_lru(caps));
  schemes.push_back(make_ulc(caps));
  double t_ind = 0, t_ulc = 0, t_uni = 0;
  for (SchemePtr& scheme : schemes) {
    const RunResult r = run_scheme(*scheme, trace, model);
    std::printf("%-8s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %11.1f%% %12.3f\n",
                r.scheme.c_str(), 100 * r.stats.hit_ratio(0),
                100 * r.stats.hit_ratio(1), 100 * r.stats.hit_ratio(2),
                100 * r.stats.miss_ratio(), 100 * r.stats.demotion_ratio(0),
                r.t_ave_ms);
    if (r.scheme == "indLRU") t_ind = r.t_ave_ms;
    if (r.scheme == "uniLRU") t_uni = r.t_ave_ms;
    if (r.scheme == "ULC") t_ulc = r.t_ave_ms;
  }

  std::printf("\nULC is %.1fx faster than independent LRU and %.1fx faster "
              "than unified LRU on this workload.\n",
              t_ind / t_ulc, t_uni / t_ulc);
  return 0;
}
